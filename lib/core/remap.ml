module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Topology = Oregami_topology.Topology
module Faults = Oregami_topology.Faults
module Mapping = Oregami_mapper.Mapping
module Repair = Oregami_mapper.Repair
module Netsim = Oregami_metrics.Netsim

type regime = { rg_expr : Phase_expr.t; rg_comms : string list }

(* top-level sequence chunks *)
let rec seq_chunks = function
  | Phase_expr.Seq (a, b) -> seq_chunks a @ seq_chunks b
  | e -> [ e ]

let split_regimes expr =
  let chunks = seq_chunks expr in
  let of_chunk e = { rg_expr = e; rg_comms = Phase_expr.comm_names e } in
  let shares a b = List.exists (fun c -> List.mem c b.rg_comms) a.rg_comms in
  let merge a b =
    {
      rg_expr = Phase_expr.Seq (a.rg_expr, b.rg_expr);
      rg_comms = List.sort_uniq compare (a.rg_comms @ b.rg_comms);
    }
  in
  (* merge adjacent chunks that reuse a communication phase (no point
     remapping inside a repeated pattern), and fold pure-exec chunks
     into their predecessor *)
  List.fold_left
    (fun acc chunk ->
      let r = of_chunk chunk in
      match acc with
      | prev :: rest when r.rg_comms = [] || prev.rg_comms = [] || shares prev r ->
        merge prev r :: rest
      | _ -> r :: acc)
    [] chunks
  |> List.rev

let sub_taskgraph tg expr =
  (* only the regime's own phases: the mapper must see the regime's
     communication structure, not the whole program's *)
  let comms = Phase_expr.comm_names expr and execs = Phase_expr.exec_names expr in
  Taskgraph.make
    ~node_labels:tg.Taskgraph.node_labels ~node_types:tg.Taskgraph.node_types
    ~node_requires:tg.Taskgraph.node_requires
    ~declared_symmetric:tg.Taskgraph.declared_symmetric ~name:tg.Taskgraph.tg_name
    ~n:tg.Taskgraph.n
    ~comm_phases:
      (tg.Taskgraph.comm_phases
      |> List.filter (fun (cp : Taskgraph.comm_phase) -> List.mem cp.Taskgraph.cp_name comms)
      |> List.map (fun (cp : Taskgraph.comm_phase) -> (cp.Taskgraph.cp_name, cp.Taskgraph.edges)))
    ~exec_phases:
      (tg.Taskgraph.exec_phases
      |> List.filter (fun (ep : Taskgraph.exec_phase) -> List.mem ep.Taskgraph.ep_name execs)
      |> List.map (fun (ep : Taskgraph.exec_phase) -> (ep.Taskgraph.ep_name, ep.Taskgraph.costs)))
    ~expr ()

type plan = {
  static_mapping : Mapping.t;
  static_makespan : int;
  regime_mappings : (regime * Mapping.t) list;
  regime_makespans : int list;
  migration_time : int;
  remap_makespan : int;
  worthwhile : bool;
}

let migration_step topo migration_volume before after =
  (* every task that moves ships its state in one synchronous step;
     the simulation itself lives in Netsim so fault recovery can price
     evacuations with the same model *)
  Netsim.migration_time ~volume:migration_volume topo before after

let plan ?options ?(migration_volume = 8) tg topo =
  let ( let* ) = Result.bind in
  let* static_mapping = Driver.map_taskgraph ?options tg topo in
  let static_makespan = (Netsim.run static_mapping).Netsim.makespan in
  let regimes = split_regimes tg.Taskgraph.expr in
  let* regime_mappings =
    List.fold_left
      (fun (i, acc) r ->
        let tagged res =
          (* say which regime failed: "regime 2 (shift,gather): ..." *)
          Result.map_error
            (fun e ->
              Printf.sprintf "regime %d (%s): %s" i
                (String.concat "," r.rg_comms) e)
            res
        in
        ( i + 1,
          let* l = acc in
          let* sub = tagged (sub_taskgraph tg r.rg_expr) in
          let* m = tagged (Driver.map_taskgraph ?options sub topo) in
          Ok ((r, m) :: l) ))
      (1, Ok []) regimes
    |> snd
  in
  let regime_mappings = List.rev regime_mappings in
  let regime_makespans =
    List.map (fun (_, m) -> (Netsim.run m).Netsim.makespan) regime_mappings
  in
  let rec migrations = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      migration_step topo migration_volume (Mapping.assignment a) (Mapping.assignment b)
      + migrations rest
    | [ _ ] | [] -> 0
  in
  let migration_time = migrations regime_mappings in
  let remap_makespan = List.fold_left ( + ) 0 regime_makespans + migration_time in
  Ok
    {
      static_mapping;
      static_makespan;
      regime_mappings;
      regime_makespans;
      migration_time;
      remap_makespan;
      worthwhile = List.length regime_mappings > 1 && remap_makespan < static_makespan;
    }

(* ------------------------------------------------------------------ *)
(* fault recovery: minimum-disruption repair vs. from-scratch remap   *)

type recovery = {
  rc_faults : Faults.t;
  rc_base : Mapping.t;
  rc_base_makespan : int;
  rc_base_ms : float;
  rc_repair : Repair.t;
  rc_repair_migration : int;
  rc_repair_makespan : int;
  rc_repair_ms : float;
  rc_remap : Mapping.t;
  rc_remap_moved : int;
  rc_remap_migration : int;
  rc_remap_makespan : int;
  rc_remap_ms : float;
  rc_repair_wins : bool;
}

let moved_between before after =
  let n = Array.length before in
  let count = ref 0 in
  for t = 0 to n - 1 do
    if before.(t) <> after.(t) then incr count
  done;
  !count

let recover ?options ?(migration_volume = 8) ?compiled tg topo faults =
  let ( let* ) = Result.bind in
  let* () =
    if Faults.is_empty faults then Error "no faults to recover from" else Ok ()
  in
  let* view = Faults.degrade topo faults in
  (* per-phase wall-clock: how long the initial mapping, the repair,
     and the from-scratch remap each took — the operational question
     during recovery is whether repair is cheap enough to run inline *)
  let timed f =
    let r, s = Oregami_prelude.Clock.time f in
    (r, s *. 1e3)
  in
  let base_r, rc_base_ms =
    timed (fun () ->
        match compiled with
        | Some c -> Driver.map_compiled ?options c topo
        | None -> Driver.map_taskgraph ?options tg topo)
  in
  let* rc_base = base_r in
  let rc_base_makespan = (Netsim.run rc_base).Netsim.makespan in
  let repair_r, rc_repair_ms =
    (* the repair honours the same placement constraints the base
       mapping was produced under — recompiled against the degraded
       machine, so a pin on a dead processor refuses by name *)
    let constraints =
      match options with
      | Some o -> o.Oregami_mapper.Ctx.constraints
      | None -> Oregami_mapper.Constraints.none
    in
    timed (fun () -> Repair.repair ~constraints rc_base view.Faults.topo)
  in
  let* rc_repair = repair_r in
  let remap_r, rc_remap_ms =
    timed (fun () ->
        match compiled with
        | Some c -> Driver.map_compiled ?options ~faults c view.Faults.topo
        | None -> Driver.map_taskgraph ?options ~faults tg view.Faults.topo)
  in
  let* rc_remap =
    Result.map_error
      (fun e -> "from-scratch remap on the degraded topology failed: " ^ e)
      remap_r
  in
  let before = Mapping.assignment rc_base in
  let repaired = Mapping.assignment rc_repair.Repair.rp_mapping in
  let remapped = Mapping.assignment rc_remap in
  let price = Netsim.migration_time ~volume:migration_volume view.Faults.topo in
  let rc_repair_migration = price before repaired in
  let rc_remap_migration = price before remapped in
  let rc_repair_makespan = (Netsim.run rc_repair.Repair.rp_mapping).Netsim.makespan in
  let rc_remap_makespan = (Netsim.run rc_remap).Netsim.makespan in
  Ok
    {
      rc_faults = faults;
      rc_base;
      rc_base_makespan;
      rc_base_ms;
      rc_repair;
      rc_repair_migration;
      rc_repair_makespan;
      rc_repair_ms;
      rc_remap;
      rc_remap_moved = moved_between before remapped;
      rc_remap_migration;
      rc_remap_makespan;
      rc_remap_ms;
      rc_repair_wins =
        rc_repair_migration + rc_repair_makespan <= rc_remap_migration + rc_remap_makespan;
    }
