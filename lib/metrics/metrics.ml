module Mapping = Oregami_mapper.Mapping
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache
module Tab = Oregami_prelude.Tab

type load = { tasks_per_proc : int array; exec_per_proc : int array }

type link_report = {
  volume_per_link : int array;
  messages_per_link : int array;
  per_phase_contention : (string * int array) list;
}

type model = { bandwidth : int; latency : int }

let default_model = { bandwidth = 1; latency = 1 }

type summary = {
  strategy : string;
  tasks : int;
  procs : int;
  clusters : int;
  load : load;
  load_imbalance : float;
  links : link_report;
  total_ipc : int;
  dilation_max : int;
  dilation_avg : float;
  max_link_contention : int;
  completion_time : int;
  route_stretch : float;
}

let load_metrics (m : Mapping.t) =
  let tg = m.Mapping.tg in
  let procs = Topology.node_count m.Mapping.topo in
  let tasks_per_proc = Array.make procs 0 in
  let exec_per_proc = Array.make procs 0 in
  for task = 0 to tg.Taskgraph.n - 1 do
    let p = Mapping.proc_of_task m task in
    tasks_per_proc.(p) <- tasks_per_proc.(p) + 1;
    List.iter
      (fun (ep : Taskgraph.exec_phase) ->
        let occurrences = Phase_expr.count_exec tg.Taskgraph.expr ep.Taskgraph.ep_name in
        exec_per_proc.(p) <-
          exec_per_proc.(p) + (occurrences * ep.Taskgraph.costs.(task)))
      tg.Taskgraph.exec_phases
  done;
  { tasks_per_proc; exec_per_proc }

let phase_routing (m : Mapping.t) name =
  List.find_opt (fun pr -> pr.Mapping.pr_phase = name) m.Mapping.routings

let link_metrics (m : Mapping.t) =
  let tg = m.Mapping.tg in
  let nlinks = Topology.link_count m.Mapping.topo in
  let volume_per_link = Array.make nlinks 0 in
  let messages_per_link = Array.make nlinks 0 in
  let per_phase_contention =
    List.map
      (fun (cp : Taskgraph.comm_phase) ->
        let name = cp.Taskgraph.cp_name in
        let contention = Array.make nlinks 0 in
        (match phase_routing m name with
        | None -> ()
        | Some pr ->
          let occurrences = Phase_expr.count_comm tg.Taskgraph.expr name in
          List.iter
            (fun re ->
              List.iter
                (fun link ->
                  contention.(link) <- contention.(link) + 1;
                  messages_per_link.(link) <- messages_per_link.(link) + occurrences;
                  volume_per_link.(link) <-
                    volume_per_link.(link) + (occurrences * re.Mapping.re_volume))
                re.Mapping.re_route.Routes.links)
            pr.Mapping.pr_edges);
        (name, contention))
      tg.Taskgraph.comm_phases
  in
  { volume_per_link; messages_per_link; per_phase_contention }

let slot_cost model (m : Mapping.t) exec_loads slot =
  let nlinks = Topology.link_count m.Mapping.topo in
  (* execution part: slowest processor *)
  let exec_cost =
    List.fold_left
      (fun acc name ->
        match List.assoc_opt name exec_loads with
        | Some per_proc -> max acc (Array.fold_left max 0 per_proc)
        | None -> acc)
      0 slot.Phase_expr.execs
  in
  (* communication part: busiest link + deepest route *)
  let link_volume = Array.make nlinks 0 in
  let max_hops = ref 0 in
  List.iter
    (fun name ->
      match phase_routing m name with
      | None -> ()
      | Some pr ->
        List.iter
          (fun re ->
            let hops = Routes.hops re.Mapping.re_route in
            if hops > 0 then begin
              max_hops := max !max_hops hops;
              List.iter
                (fun link -> link_volume.(link) <- link_volume.(link) + re.Mapping.re_volume)
                re.Mapping.re_route.Routes.links
            end)
          pr.Mapping.pr_edges)
    slot.Phase_expr.comms;
  let busiest = Array.fold_left max 0 link_volume in
  let comm_cost =
    if busiest = 0 then 0
    else ((busiest + model.bandwidth - 1) / model.bandwidth) + (!max_hops * model.latency)
  in
  exec_cost + comm_cost

let exec_loads_per_phase (m : Mapping.t) =
  let tg = m.Mapping.tg in
  let procs = Topology.node_count m.Mapping.topo in
  List.map
    (fun (ep : Taskgraph.exec_phase) ->
      let per_proc = Array.make procs 0 in
      Array.iteri
        (fun task cost ->
          let p = Mapping.proc_of_task m task in
          per_proc.(p) <- per_proc.(p) + cost)
        ep.Taskgraph.costs;
      (ep.Taskgraph.ep_name, per_proc))
    tg.Taskgraph.exec_phases

let completion_time ?(model = default_model) (m : Mapping.t) =
  let exec_loads = exec_loads_per_phase m in
  let trace = Phase_expr.trace m.Mapping.tg.Taskgraph.expr in
  List.fold_left (fun acc slot -> acc + slot_cost model m exec_loads slot) 0 trace

let route_stretch (m : Mapping.t) =
  let dc = Distcache.hops m.Mapping.topo in
  let total = ref 0.0 and count = ref 0 in
  List.iter
    (fun pr ->
      List.iter
        (fun re ->
          let pu = Mapping.proc_of_task m re.Mapping.re_src in
          let pv = Mapping.proc_of_task m re.Mapping.re_dst in
          if pu <> pv then begin
            let shortest = Distcache.hop dc pu pv in
            if shortest > 0 && shortest < max_int then begin
              total :=
                !total
                +. (float_of_int (Routes.hops re.Mapping.re_route) /. float_of_int shortest);
              incr count
            end
          end)
        pr.Mapping.pr_edges)
    m.Mapping.routings;
  if !count = 0 then 0.0 else !total /. float_of_int !count

let summary ?(model = default_model) (m : Mapping.t) =
  let tg = m.Mapping.tg in
  let load = load_metrics m in
  let links = link_metrics m in
  let total_exec = Array.fold_left ( + ) 0 load.exec_per_proc in
  let max_exec = Array.fold_left max 0 load.exec_per_proc in
  let procs = Topology.node_count m.Mapping.topo in
  let load_imbalance =
    if total_exec = 0 then 0.0
    else float_of_int max_exec /. (float_of_int total_exec /. float_of_int procs)
  in
  let dilation_max, dilation_avg, _ = Mapping.dilation_stats m in
  let max_link_contention =
    List.fold_left
      (fun acc (_, contention) -> max acc (Array.fold_left max 0 contention))
      0 links.per_phase_contention
  in
  let total_ipc =
    Mapping.total_ipc (Taskgraph.static_graph tg) (Mapping.assignment m)
  in
  {
    strategy = m.Mapping.strategy;
    tasks = tg.Taskgraph.n;
    procs;
    clusters = Mapping.cluster_count m;
    load;
    load_imbalance;
    links;
    total_ipc;
    dilation_max;
    dilation_avg;
    max_link_contention;
    completion_time = completion_time ~model m;
    route_stretch = route_stretch m;
  }

let print_summary ?degradation s =
  Tab.print
    ~header:[ "metric"; "value" ]
    ([
       [ "strategy"; s.strategy ];
       [ "tasks"; string_of_int s.tasks ];
       [ "clusters"; string_of_int s.clusters ];
       [ "processors"; string_of_int s.procs ];
       [ "max tasks/proc"; string_of_int (Array.fold_left max 0 s.load.tasks_per_proc) ];
       [ "load imbalance"; Tab.fixed 3 s.load_imbalance ];
       [ "total IPC volume"; string_of_int s.total_ipc ];
       [ "dilation (max)"; string_of_int s.dilation_max ];
       [ "dilation (avg)"; Tab.fixed 3 s.dilation_avg ];
       [ "max link contention"; string_of_int s.max_link_contention ];
       [ "completion time (model)"; string_of_int s.completion_time ];
     ]
    @
    match degradation with
    | None -> []
    | Some d ->
      [ [ "degradation"; Oregami_mapper.Stats.degradation_string d ] ])
