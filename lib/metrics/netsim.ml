module Mapping = Oregami_mapper.Mapping
module Repair = Oregami_mapper.Repair
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Topology = Oregami_topology.Topology
module Faults = Oregami_topology.Faults
module Routes = Oregami_topology.Routes
module Pqueue = Oregami_prelude.Pqueue

type switching = Store_and_forward | Wormhole

type params = { bandwidth : int; latency : int; switching : switching }

let default_params = { bandwidth = 1; latency = 1; switching = Store_and_forward }

let wormhole_params = { default_params with switching = Wormhole }

type report = {
  makespan : int;
  comm_time : int;
  exec_time : int;
  slot_times : int list;
  max_queue : int;
}

(* Directed channel id for (link, forward?) *)
let channel link forward = (2 * link) + if forward then 0 else 1

(* wormhole: a message holds every channel of its path for its whole
   service time; messages acquire paths greedily in release order
   (ties by insertion), waiting for the busiest channel on the path *)
let simulate_wormhole params topo messages =
  let nchannels = 2 * Topology.link_count topo in
  let busy_until = Array.make nchannels 0 in
  let max_queue = ref 0 in
  let finish_time = ref 0 in
  let channels_of route =
    let rec go nodes links acc =
      match (nodes, links) with
      | node :: (next :: _ as rest), link :: links ->
        let u, _ = Topology.link_endpoints topo link in
        ignore next;
        go rest links (channel link (node = u) :: acc)
      | _, [] -> List.rev acc
      | _, _ -> List.rev acc
    in
    go route.Routes.nodes route.Routes.links []
  in
  let ordered =
    List.stable_sort (fun (_, _, r1) (_, _, r2) -> compare r1 r2) messages
  in
  List.iter
    (fun (route, volume, release) ->
      let chs = channels_of route in
      if chs <> [] then begin
        let ready = List.fold_left (fun acc ch -> max acc busy_until.(ch)) release chs in
        if ready > release then max_queue := max !max_queue 1;
        let service =
          (List.length chs * params.latency)
          + ((volume + params.bandwidth - 1) / params.bandwidth)
        in
        let finish = ready + service in
        List.iter (fun ch -> busy_until.(ch) <- finish) chs;
        finish_time := max !finish_time finish
      end
      else finish_time := max !finish_time release)
    ordered;
  (!finish_time, !max_queue)

(* Simulate one communication step with per-message release times;
   returns (finish time of the last message, deepest queue). *)
let simulate_store_and_forward params topo messages =
  let nchannels = 2 * Topology.link_count topo in
  let busy_until = Array.make nchannels 0 in
  let queue_depth = Array.make nchannels 0 in
  let max_queue = ref 0 in
  let finish_time = ref 0 in
  (* events: (time, (message_route_remaining, position_node, volume)) *)
  let pq = Pqueue.create () in
  List.iter
    (fun (route, volume, release) ->
      match route.Routes.nodes with
      | src :: _ ->
        finish_time := max !finish_time release;
        Pqueue.push pq release (route.Routes.links, src, volume)
      | [] -> ())
    messages;
  let hop_time volume = ((volume + params.bandwidth - 1) / params.bandwidth) + params.latency in
  let rec drain () =
    match Pqueue.pop pq with
    | None -> ()
    | Some (t, (links, node, volume)) -> begin
      match links with
      | [] ->
        finish_time := max !finish_time t;
        drain ()
      | link :: rest ->
        let u, v = Topology.link_endpoints topo link in
        let forward = node = u in
        let next_node = if forward then v else u in
        let ch = channel link forward in
        let start = max t busy_until.(ch) in
        if start > t then begin
          queue_depth.(ch) <- queue_depth.(ch) + 1;
          max_queue := max !max_queue queue_depth.(ch)
        end
        else queue_depth.(ch) <- 0;
        let finish = start + hop_time volume in
        busy_until.(ch) <- finish;
        Pqueue.push pq finish (rest, next_node, volume);
        drain ()
    end
  in
  drain ();
  (!finish_time, !max_queue)

type span = { sp_channel : int; sp_start : int; sp_finish : int; sp_volume : int }

let channel_name topo ch =
  let link = ch / 2 in
  let u, v = Topology.link_endpoints topo link in
  if ch land 1 = 0 then Printf.sprintf "%d->%d" u v else Printf.sprintf "%d->%d" v u

(* store-and-forward with span recording (mirrors the simulator's
   channel discipline; kept separate to keep the hot path lean) *)
let simulate_spans params topo messages =
  let nchannels = 2 * Topology.link_count topo in
  let busy_until = Array.make nchannels 0 in
  let spans = ref [] in
  let pq = Pqueue.create () in
  List.iter
    (fun (route, volume, release) ->
      match route.Routes.nodes with
      | src :: _ -> Pqueue.push pq release (route.Routes.links, src, volume)
      | [] -> ())
    messages;
  let hop_time volume = ((volume + params.bandwidth - 1) / params.bandwidth) + params.latency in
  let rec drain () =
    match Pqueue.pop pq with
    | None -> ()
    | Some (t, (links, node, volume)) -> begin
      match links with
      | [] -> drain ()
      | link :: rest ->
        let u, v = Topology.link_endpoints topo link in
        let forward = node = u in
        let next_node = if forward then v else u in
        let ch = channel link forward in
        let start = max t busy_until.(ch) in
        let finish = start + hop_time volume in
        busy_until.(ch) <- finish;
        spans := { sp_channel = ch; sp_start = start; sp_finish = finish; sp_volume = volume } :: !spans;
        Pqueue.push pq finish (rest, next_node, volume);
        drain ()
    end
  in
  drain ();
  List.rev !spans

let simulate_released params topo messages =
  match params.switching with
  | Store_and_forward -> simulate_store_and_forward params topo messages
  | Wormhole -> simulate_wormhole params topo messages

(* synchronous step: everything released at t = 0 *)
let simulate_messages params topo messages =
  simulate_released params topo (List.map (fun (r, v) -> (r, v, 0)) messages)

let slot_messages (m : Mapping.t) slot =
  List.concat_map
    (fun name ->
      match List.find_opt (fun pr -> pr.Mapping.pr_phase = name) m.Mapping.routings with
      | None -> []
      | Some pr ->
        List.filter_map
          (fun re ->
            if re.Mapping.re_route.Routes.links = [] then None
            else Some (re.Mapping.re_route, re.Mapping.re_volume))
          pr.Mapping.pr_edges)
    slot.Phase_expr.comms

let exec_slot_time exec_loads slot =
  List.fold_left
    (fun acc name ->
      match List.assoc_opt name exec_loads with
      | Some per_proc -> max acc (Array.fold_left max 0 per_proc)
      | None -> acc)
    0 slot.Phase_expr.execs

let exec_loads (m : Mapping.t) =
  let tg = m.Mapping.tg in
  let procs = Topology.node_count m.Mapping.topo in
  List.map
    (fun (ep : Taskgraph.exec_phase) ->
      let per_proc = Array.make procs 0 in
      Array.iteri
        (fun task cost ->
          let p = Mapping.proc_of_task m task in
          per_proc.(p) <- per_proc.(p) + cost)
        ep.Taskgraph.costs;
      (ep.Taskgraph.ep_name, per_proc))
    tg.Taskgraph.exec_phases

let run ?(params = default_params) (m : Mapping.t) =
  let loads = exec_loads m in
  let trace = Phase_expr.trace m.Mapping.tg.Taskgraph.expr in
  let comm_time = ref 0 and exec_time = ref 0 and max_queue = ref 0 in
  let slot_times =
    List.map
      (fun slot ->
        let e = exec_slot_time loads slot in
        let c, q = simulate_messages params m.Mapping.topo (slot_messages m slot) in
        max_queue := max !max_queue q;
        comm_time := !comm_time + c;
        exec_time := !exec_time + e;
        e + c)
      trace
  in
  {
    makespan = !comm_time + !exec_time;
    comm_time = !comm_time;
    exec_time = !exec_time;
    slot_times;
    max_queue = !max_queue;
  }

(* ------------------------------------------------------------------ *)
(* migration pricing and mid-trace fault events                       *)

let migration_time ?(params = default_params) ?(volume = 8) topo before after =
  if Array.length before <> Array.length after then
    invalid_arg "Netsim.migration_time: assignment lengths differ";
  (* every task that moves ships its state in one synchronous step over
     the topology's deterministic routes — the Remap cost model.  A task
     stranded on a dead processor cannot ship from there (the node has
     no links); its state is restored from the lowest-numbered alive
     processor, standing in for the checkpoint / stable-storage host. *)
  let host =
    let rec go u =
      if u >= Topology.node_count topo then invalid_arg "Netsim.migration_time: no alive processor"
      else if Topology.alive topo u then u
      else go (u + 1)
    in
    go 0
  in
  let messages = ref [] in
  Array.iteri
    (fun t p ->
      let q = after.(t) in
      if p <> q then begin
        let src = if Topology.alive topo p then p else host in
        messages := (Routes.deterministic topo src q, volume, 0) :: !messages
      end)
    before;
  if !messages = [] then 0 else fst (simulate_released params topo !messages)

type fault_event = { at_slot : int; kill_procs : int list; kill_links : int list }

type recovery = {
  rv_fault_free : report;  (** the run as it would have gone, no faults *)
  rv_pre_time : int;  (** slots completed before the fault, original mapping *)
  rv_migration_time : int;  (** evacuation traffic on the degraded network *)
  rv_post_time : int;  (** remaining slots, repaired mapping *)
  rv_makespan : int;  (** pre + migration + post *)
  rv_delta : int;  (** recovery overhead vs. the fault-free makespan *)
  rv_repair : Repair.t;
}

let slot_time params loads (m : Mapping.t) slot =
  let e = exec_slot_time loads slot in
  let c, _ = simulate_messages params m.Mapping.topo (slot_messages m slot) in
  e + c

let run_with_fault ?(params = default_params) ?(migration_volume = 8) (m : Mapping.t)
    event =
  let ( let* ) = Result.bind in
  let* faults =
    Faults.make ~procs:event.kill_procs ~links:event.kill_links m.Mapping.topo
  in
  let* () =
    if Faults.is_empty faults then Error "fault event kills nothing" else Ok ()
  in
  let* view = Faults.degrade m.Mapping.topo faults in
  let* rep = Repair.repair m view.Faults.topo in
  let repaired = rep.Repair.rp_mapping in
  let trace = Phase_expr.trace m.Mapping.tg.Taskgraph.expr in
  let at = max 0 (min event.at_slot (List.length trace)) in
  let loads_before = exec_loads m and loads_after = exec_loads repaired in
  let pre = ref 0 and post = ref 0 in
  List.iteri
    (fun i slot ->
      if i < at then pre := !pre + slot_time params loads_before m slot
      else post := !post + slot_time params loads_after repaired slot)
    trace;
  let rv_migration_time =
    migration_time ~params ~volume:migration_volume view.Faults.topo
      (Mapping.assignment m) (Mapping.assignment repaired)
  in
  let rv_fault_free = run ~params m in
  let rv_makespan = !pre + rv_migration_time + !post in
  Ok
    {
      rv_fault_free;
      rv_pre_time = !pre;
      rv_migration_time;
      rv_post_time = !post;
      rv_makespan;
      rv_delta = rv_makespan - rv_fault_free.makespan;
      rv_repair = rep;
    }

let phase_duration ?(params = default_params) (m : Mapping.t) name =
  let slot = { Phase_expr.comms = [ name ]; execs = [] } in
  fst (simulate_messages params m.Mapping.topo (slot_messages m slot))

let spans ?(params = default_params) (m : Mapping.t) phase =
  let slot = { Phase_expr.comms = [ phase ]; execs = [] } in
  let messages = List.map (fun (r, v) -> (r, v, 0)) (slot_messages m slot) in
  simulate_spans params m.Mapping.topo messages

(* ------------------------------------------------------------------ *)
(* Occupancy metrics for the online cluster: how much of the surviving
   machine is leased out, and how shattered the free space is. *)

let utilization topo ~leased =
  let alive = Topology.alive_count topo in
  if alive = 0 then 0.0
  else begin
    let busy =
      List.fold_left
        (fun acc p -> if Topology.alive topo p then acc + 1 else acc)
        0 (List.sort_uniq compare leased)
    in
    float_of_int busy /. float_of_int alive
  end

let fragmentation topo ~free =
  let free = List.sort_uniq compare free in
  let free = List.filter (Topology.alive topo) free in
  match free with
  | [] | [ _ ] -> 0.0
  | _ ->
    let total = List.length free in
    let in_free = Hashtbl.create total in
    List.iter (fun p -> Hashtbl.replace in_free p ()) free;
    let g = Topology.graph topo in
    let seen = Hashtbl.create total in
    (* BFS restricted to free processors: largest contiguous free block *)
    let component seed =
      let q = Queue.create () in
      Queue.add seed q;
      Hashtbl.replace seen seed ();
      let size = ref 0 in
      while not (Queue.is_empty q) do
        let p = Queue.pop q in
        incr size;
        List.iter
          (fun (u, _) ->
            if Hashtbl.mem in_free u && not (Hashtbl.mem seen u) then begin
              Hashtbl.replace seen u ();
              Queue.add u q
            end)
          (Oregami_graph.Ugraph.neighbors g p)
      done;
      !size
    in
    let largest =
      List.fold_left
        (fun acc p -> if Hashtbl.mem seen p then acc else max acc (component p))
        0 free
    in
    1.0 -. (float_of_int largest /. float_of_int total)
