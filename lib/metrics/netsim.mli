(** Network simulator — the substitute for the iPSC/2 / NCUBE /
    Transputer testbeds the paper targeted.

    Two switching disciplines of the era:

    - {e store-and-forward} (iPSC/1-style): each link is two directed
      channels; a channel transmits one message at a time at
      [ceil(volume/bandwidth) + latency] per hop, queueing the rest
      (FIFO by arrival, ties by message id) — dilation multiplies cost;
    - {e wormhole / cut-through} (iPSC/2-style): a message reserves its
      whole path, transmits in [hops·latency + ceil(volume/bandwidth)]
      and blocks until every channel on the path is free — dilation is
      cheap, contention expensive (which is exactly what MM-Route
      optimizes).

    A communication slot of the phase expression releases all its
    messages at once and finishes when the last one arrives; an
    execution slot advances the clock by the slowest processor's summed
    task cost.  The simulated makespan of the whole trace is the
    mapping's measured completion time. *)

type switching = Store_and_forward | Wormhole

type params = {
  bandwidth : int;  (** volume units per time unit per channel *)
  latency : int;  (** per-hop fixed cost *)
  switching : switching;
}

val default_params : params
(** Store-and-forward, bandwidth 1, latency 1. *)

val wormhole_params : params
(** Wormhole, bandwidth 1, latency 1. *)

type report = {
  makespan : int;
  comm_time : int;  (** portion of the makespan spent in comm slots *)
  exec_time : int;
  slot_times : int list;  (** duration of each trace slot, in order *)
  max_queue : int;  (** deepest channel queue observed *)
}

val run : ?params:params -> Oregami_mapper.Mapping.t -> report

val phase_duration : ?params:params -> Oregami_mapper.Mapping.t -> string -> int
(** Simulated duration of a single occurrence of one communication
    phase. *)

type span = {
  sp_channel : int;  (** directed channel id: [2·link + direction] *)
  sp_start : int;
  sp_finish : int;
  sp_volume : int;
}

val channel_name : Oregami_topology.Topology.t -> int -> string
(** Human-readable channel label, e.g. ["3->5"]. *)

val spans : ?params:params -> Oregami_mapper.Mapping.t -> string -> span list
(** Busy intervals of every directed channel during one occurrence of
    the named communication phase (store-and-forward discipline) —
    the raw material of the per-link timeline view. *)

val simulate_released :
  params ->
  Oregami_topology.Topology.t ->
  (Oregami_topology.Routes.route * int * int) list ->
  int * int
(** Lower-level entry: simulate messages [(route, volume, release
    time)] and return [(finish time of the last message, deepest
    queue)].  Used by the scheduling extension, where local task
    ordering staggers message release. *)

(** {2 Migration pricing and mid-trace fault events} *)

val migration_time :
  ?params:params -> ?volume:int -> Oregami_topology.Topology.t -> int array -> int array -> int
(** [migration_time topo before after] is the simulated cost of one
    synchronous migration step between two task assignments: every task
    whose processor changes ships [volume] units (default 8) over the
    topology's deterministic route — the [Remap] cost model.  On a
    degraded topology, a task moving {e off a dead processor} restores
    its state from the lowest-numbered alive processor (the
    checkpoint-host stand-in), since a dead node has no links to ship
    over.  Raises [Invalid_argument] if the assignment lengths differ
    or no processor is alive. *)

type fault_event = {
  at_slot : int;  (** trace slot index at which the faults strike *)
  kill_procs : int list;
  kill_links : int list;  (** link ids of the mapping's topology *)
}

type recovery = {
  rv_fault_free : report;  (** the run as it would have gone, no faults *)
  rv_pre_time : int;  (** slots completed before the fault, original mapping *)
  rv_migration_time : int;  (** evacuation traffic on the degraded network *)
  rv_post_time : int;  (** remaining slots, repaired mapping *)
  rv_makespan : int;  (** pre + migration + post *)
  rv_delta : int;  (** recovery overhead vs. the fault-free makespan *)
  rv_repair : Oregami_mapper.Repair.t;
}

val run_with_fault :
  ?params:params ->
  ?migration_volume:int ->
  Oregami_mapper.Mapping.t ->
  fault_event ->
  (recovery, string) result
(** Simulates the mapping's trace with a mid-run fault: slots before
    [at_slot] run on the original mapping, then the named processors
    and links die, the mapping is repaired
    ({!Oregami_mapper.Repair.repair}), the evacuation is priced as
    migration traffic on the degraded network, and the remaining slots
    run on the repaired mapping.  Errors (never crashes) on invalid
    fault ids, an empty fault set, faults that disconnect the
    survivors, or an unrepairable mapping. *)

val utilization : Oregami_topology.Topology.t -> leased:int list -> float
(** Fraction of the {e alive} processors currently under lease —
    duplicates and dead ids in [leased] are ignored.  [0.] on a machine
    with nothing alive. *)

val fragmentation : Oregami_topology.Topology.t -> free:int list -> float
(** How shattered the free space is: [1 - largest contiguous free
    block / total free processors], where contiguity is adjacency in
    the (possibly degraded) topology restricted to free alive
    processors.  [0.] when the free space is empty, a single processor,
    or one connected block; approaches [1.] as the free processors
    scatter into many small islands.  Drives the cluster's re-pack
    decision. *)
