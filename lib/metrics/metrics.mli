(** METRICS (paper §5): performance analysis of a mapping.

    Computes the paper's metric spectrum — load balancing (tasks per
    processor, execution time per processor), link metrics (dilation,
    communication volume, per-phase contention), and overall metrics
    (estimated completion time, total interprocessor communication). *)

type load = {
  tasks_per_proc : int array;
  exec_per_proc : int array;
      (** total execution time on each processor over the whole phase
          expression (costs × occurrences) *)
}

type link_report = {
  volume_per_link : int array;
      (** message volume carried by each link over the whole trace *)
  messages_per_link : int array;
  per_phase_contention : (string * int array) list;
      (** for one occurrence of each phase: messages per link *)
}

type model = {
  bandwidth : int;  (** volume units transferred per time unit *)
  latency : int;  (** per-hop startup cost *)
}

val default_model : model

type summary = {
  strategy : string;
  tasks : int;
  procs : int;
  clusters : int;
  load : load;
  load_imbalance : float;
      (** max/mean execution load (1.0 = perfect; 0 when no exec) *)
  links : link_report;
  total_ipc : int;  (** volume crossing processors, whole trace *)
  dilation_max : int;
  dilation_avg : float;
  max_link_contention : int;
      (** worst per-phase messages on one link *)
  completion_time : int;  (** synchronous phase-by-phase estimate *)
  route_stretch : float;
      (** mean route hops ÷ shortest-possible hops over routed
          inter-processor edges (1.0 when every route is shortest,
          as MM-Route guarantees; 0 when nothing is routed).
          Distances come from the topology's {!Oregami_topology.Distcache}. *)
}

val load_metrics : Oregami_mapper.Mapping.t -> load

val link_metrics : Oregami_mapper.Mapping.t -> link_report

val route_stretch : Oregami_mapper.Mapping.t -> float
(** See the [route_stretch] field of {!summary}. *)

val completion_time : ?model:model -> Oregami_mapper.Mapping.t -> int
(** Phase-by-phase synchronous estimate: an execution slot costs the
    maximum per-processor summed task cost; a communication slot costs
    [max_link_volume/bandwidth + max_hops·latency] over the messages of
    its phases.  Slots accumulate over the whole phase-expression
    trace. *)

val summary : ?model:model -> Oregami_mapper.Mapping.t -> summary

val print_summary :
  ?degradation:Oregami_mapper.Stats.degradation -> summary -> unit
(** Tabular report on stdout.  [degradation] appends a row saying how
    complete the producing pipeline run was (budgeted runs); omitted
    entirely when [None] so unbudgeted output is unchanged. *)
