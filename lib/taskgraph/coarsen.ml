module Ugraph = Oregami_graph.Ugraph
module Rng = Oregami_prelude.Rng
module Blossom = Oregami_matching.Blossom

type level = {
  lv_n : int;
  lv_xadj : int array;
  lv_adj : int array;
  lv_ew : int array;
  lv_node_w : int array;
  lv_edge_total : int;
  lv_internalized : int;
  lv_rounds : int;
}

type hierarchy = {
  levels : level array;
  maps : int array array;
  truncated : bool;
}

let total_node_weight lv = Array.fold_left ( + ) 0 lv.lv_node_w

let csr_of_edges ~n ~node_w ~internalized ~rounds edges =
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let xadj = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    xadj.(i + 1) <- xadj.(i) + deg.(i)
  done;
  let m = xadj.(n) in
  let adj = Array.make m 0 and ew = Array.make m 0 in
  let fill = Array.make n 0 in
  let total = ref 0 in
  List.iter
    (fun (u, v, w) ->
      total := !total + w;
      let iu = xadj.(u) + fill.(u) in
      adj.(iu) <- v;
      ew.(iu) <- w;
      fill.(u) <- fill.(u) + 1;
      let iv = xadj.(v) + fill.(v) in
      adj.(iv) <- u;
      ew.(iv) <- w;
      fill.(v) <- fill.(v) + 1)
    edges;
  {
    lv_n = n;
    lv_xadj = xadj;
    lv_adj = adj;
    lv_ew = ew;
    lv_node_w = node_w;
    lv_edge_total = !total;
    lv_internalized = internalized;
    lv_rounds = rounds;
  }

let of_ugraph ~node_weight g =
  let n = Ugraph.node_count g in
  if Array.length node_weight <> n then
    invalid_arg "Coarsen.of_ugraph: node_weight length mismatch";
  csr_of_edges ~n ~node_w:(Array.copy node_weight) ~internalized:0 ~rounds:0
    (Ugraph.edges g)

let level_ugraph lv =
  let g = Ugraph.create lv.lv_n in
  for u = 0 to lv.lv_n - 1 do
    for i = lv.lv_xadj.(u) to lv.lv_xadj.(u + 1) - 1 do
      let v = lv.lv_adj.(i) in
      if u < v then Ugraph.add_edge ~w:lv.lv_ew.(i) g u v
    done
  done;
  g

(* dense coarse ids numbered by smallest fine member, so the node
   numbering keeps whatever locality the fine numbering had *)
let ids_of_mate n mate =
  let map = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if map.(v) < 0 then begin
      map.(v) <- !next;
      let m = mate.(v) in
      if m >= 0 && map.(m) < 0 then map.(m) <- !next;
      incr next
    end
  done;
  (map, !next)

(* aggregate the fine CSR under a node map; self-loops are dropped and
   their weight accounted as internalized traffic *)
let contract lv map coarse_n ~rounds =
  let node_w = Array.make coarse_n 0 in
  for v = 0 to lv.lv_n - 1 do
    node_w.(map.(v)) <- node_w.(map.(v)) + lv.lv_node_w.(v)
  done;
  let agg = Hashtbl.create (max 16 (Array.length lv.lv_adj / 2)) in
  let internal = ref 0 in
  for u = 0 to lv.lv_n - 1 do
    for i = lv.lv_xadj.(u) to lv.lv_xadj.(u + 1) - 1 do
      let v = lv.lv_adj.(i) in
      if u < v then begin
        let cu = map.(u) and cv = map.(v) in
        if cu = cv then internal := !internal + lv.lv_ew.(i)
        else begin
          let a = min cu cv and b = max cu cv in
          let key = (a * coarse_n) + b in
          match Hashtbl.find_opt agg key with
          | Some r -> r := !r + lv.lv_ew.(i)
          | None -> Hashtbl.add agg key (ref lv.lv_ew.(i))
        end
      end
    done
  done;
  let edges =
    Hashtbl.fold
      (fun key r acc -> (key / coarse_n, key mod coarse_n, !r) :: acc)
      agg []
    |> List.sort compare
  in
  csr_of_edges ~n:coarse_n ~node_w ~internalized:!internal ~rounds edges

(* exact maximum-weight matching for small levels; the weight cap is
   honoured by dropping too-heavy edges before matching *)
let blossom_matching lv ~wcap =
  let edges = ref [] in
  for u = 0 to lv.lv_n - 1 do
    for i = lv.lv_xadj.(u) to lv.lv_xadj.(u + 1) - 1 do
      let v = lv.lv_adj.(i) in
      if u < v && lv.lv_node_w.(u) + lv.lv_node_w.(v) <= wcap then
        edges := (u, v, lv.lv_ew.(i)) :: !edges
    done
  done;
  Blossom.max_weight_matching ~n:lv.lv_n (List.rev !edges)

(* randomized heavy-edge matching: visit nodes in a shuffled order,
   each unmatched node pairing with its heaviest unmatched neighbour
   under the weight cap (ties to the smaller id) *)
let hem_matching lv ~wcap ~rng ~poll ~dead =
  let n = lv.lv_n in
  let mate = Array.make n (-1) in
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  (try
     Array.iter
       (fun u ->
         let d = lv.lv_xadj.(u + 1) - lv.lv_xadj.(u) in
         if not (poll (d + 1)) then begin
           dead := true;
           raise Exit
         end;
         if mate.(u) < 0 then begin
           let best = ref (-1) and bw = ref min_int in
           for i = lv.lv_xadj.(u) to lv.lv_xadj.(u + 1) - 1 do
             let v = lv.lv_adj.(i) in
             if
               mate.(v) < 0 && v <> u
               && lv.lv_node_w.(u) + lv.lv_node_w.(v) <= wcap
               && (lv.lv_ew.(i) > !bw || (lv.lv_ew.(i) = !bw && v < !best))
             then begin
               best := v;
               bw := lv.lv_ew.(i)
             end
           done;
           if !best >= 0 then begin
             mate.(u) <- !best;
             mate.(!best) <- u
           end
         end)
       order
   with Exit -> ());
  mate

let count_pairs mate =
  let pairs = ref 0 in
  Array.iteri (fun v m -> if m > v then incr pairs) mate;
  !pairs

(* never contract below the target: unmatch the lightest excess pairs *)
let trim_pairs lv mate ~keep =
  let pairs = ref [] in
  Array.iteri
    (fun v m -> if m > v then pairs := (lv.lv_node_w.(v) + lv.lv_node_w.(m), v) :: !pairs)
    mate;
  let sorted = List.sort compare !pairs in
  (* heaviest pairs are the most valuable merges under the balance cap,
     but for contraction we keep the *heaviest-edge* pairs; dropping by
     combined node weight keeps the coarse weights flat.  Keep the
     first [keep] after sorting by weight (lightest kept first). *)
  let rec drop i = function
    | [] -> ()
    | (_, v) :: rest ->
      if i >= keep then begin
        let m = mate.(v) in
        mate.(v) <- -1;
        if m >= 0 then mate.(m) <- -1
      end;
      drop (i + 1) rest
  in
  drop 0 sorted

(* forced pairing of unmatched nodes (lightest first) to guarantee
   progress when the matching stalls above the target *)
let force_pairs lv mate ~needed =
  let unmatched = ref [] in
  for v = lv.lv_n - 1 downto 0 do
    if mate.(v) < 0 then unmatched := (lv.lv_node_w.(v), v) :: !unmatched
  done;
  let sorted = List.sort compare !unmatched in
  let rec pair made = function
    | (_, a) :: (_, b) :: rest when made < needed ->
      mate.(a) <- b;
      mate.(b) <- a;
      pair (made + 1) rest
    | _ -> ()
  in
  pair 0 sorted

(* the last-resort collapse: consecutive blocks along the node
   numbering, exactly [target] coarse nodes *)
let collapse_map n target = Array.init n (fun v -> v * target / n)

let coarsen ?(max_levels = 40) ?(blossom_limit = 256) ?(poll = fun _ -> true)
    ~rng ~target finest =
  if target < 1 then invalid_arg "Coarsen.coarsen: target must be >= 1";
  let total_w = total_node_weight finest in
  (* allow coarse nodes up to ~2x the average final weight, so the
     matching can't produce monsters the balance pass cannot fix *)
  let wcap = max 2 ((2 * total_w / target) + 1) in
  let levels = ref [ finest ] in
  let maps = ref [] in
  let truncated = ref false in
  let rec go lv depth =
    if lv.lv_n <= target then ()
    else if depth >= max_levels || !truncated then begin
      (* forced block collapse keeps the contract: <= target nodes *)
      let map = collapse_map lv.lv_n target in
      let coarse = contract lv map target ~rounds:0 in
      levels := coarse :: !levels;
      maps := map :: !maps
    end
    else begin
      let dead = ref false in
      let mate =
        if lv.lv_n <= blossom_limit then begin
          if not (poll (lv.lv_n * lv.lv_n)) then dead := true;
          if !dead then Array.make lv.lv_n (-1) else blossom_matching lv ~wcap
        end
        else hem_matching lv ~wcap ~rng ~poll ~dead
      in
      let rounds = ref 1 in
      let excess = lv.lv_n - target in
      if count_pairs mate > excess then trim_pairs lv mate ~keep:excess;
      (* stalled above the target (weight caps or disconnected dust):
         force-pair the lightest unmatched nodes *)
      let pairs = count_pairs mate in
      if (not !dead) && lv.lv_n - pairs > target && pairs * 10 < lv.lv_n then begin
        incr rounds;
        force_pairs lv mate ~needed:(min (excess - pairs) ((lv.lv_n - pairs) / 2))
      end;
      if !dead then truncated := true;
      let pairs = count_pairs mate in
      if pairs = 0 then
        (* no progress possible at this level: collapse and stop *)
        go lv max_levels
      else begin
        let map, coarse_n = ids_of_mate lv.lv_n mate in
        if not (poll (lv.lv_xadj.(lv.lv_n) + coarse_n)) then truncated := true;
        let coarse = contract lv map coarse_n ~rounds:!rounds in
        levels := coarse :: !levels;
        maps := map :: !maps;
        go coarse (depth + 1)
      end
    end
  in
  go finest 0;
  {
    levels = Array.of_list (List.rev !levels);
    maps = Array.of_list (List.rev !maps);
    truncated = !truncated;
  }

let project h coarse_assign =
  let nl = Array.length h.levels in
  let coarsest = h.levels.(nl - 1) in
  if Array.length coarse_assign <> coarsest.lv_n then
    invalid_arg "Coarsen.project: assignment length mismatch";
  if nl = 1 then Array.copy coarse_assign
  else begin
    (* compose the maps from coarse to fine *)
    let assign = ref coarse_assign in
    for i = nl - 2 downto 0 do
      let map = h.maps.(i) in
      assign := Array.init h.levels.(i).lv_n (fun v -> !assign.(map.(v)))
    done;
    !assign
  end
