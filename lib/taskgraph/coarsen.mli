(** Multilevel coarsening of static task graphs by heavy-edge matching.

    The flat contraction strategies (MWM-Contract, KL, Stone) are
    quadratic-ish in the task count and top out around a few thousand
    tasks.  The standard escape is the multilevel paradigm: contract a
    heavy-edge matching level by level until the graph is small, map
    the coarsest graph, then project the mapping back up.  This module
    owns the first leg — building the level hierarchy — keeping
    aggregated node weights and summed edge traffic per level so the
    finer levels can be refined against the real objective.

    Invariants (property-tested):
    - total node weight is identical at every level;
    - total edge weight at level [i] equals total edge weight at level
      [i+1] plus the weight internalized (self-loops dropped) when
      contracting into level [i+1];
    - every level map is a surjection onto dense coarse ids numbered by
      smallest fine member, so projections compose.

    Matching is Blossom maximum-weight matching on small levels (exact,
    O(V³)) and a randomized heavy-edge matching above — node visit
    order drawn from the caller's seeded {!Oregami_prelude.Rng}, each
    node grabbing its heaviest unmatched neighbour subject to a weight
    cap that protects load balance.  The module has no budget
    dependency of its own; callers meter work through the [poll]
    callback (the mapper passes [Budget.poll]). *)

type level = {
  lv_n : int;  (** node count *)
  lv_xadj : int array;  (** CSR row pointers, length [lv_n + 1] *)
  lv_adj : int array;  (** neighbour node ids *)
  lv_ew : int array;  (** edge weights, aligned with [lv_adj] *)
  lv_node_w : int array;  (** aggregated node weights *)
  lv_edge_total : int;  (** total weight over undirected edges *)
  lv_internalized : int;
      (** edge weight internalized (dropped as self-loops) when this
          level was contracted from the finer one; 0 at the finest *)
  lv_rounds : int;
      (** matching rounds spent building this level; 0 at the finest *)
}

type hierarchy = {
  levels : level array;  (** finest first; last entry is the coarsest *)
  maps : int array array;
      (** [maps.(i).(v)] is the level-[i+1] node containing level-[i]
          node [v]; length [Array.length levels - 1] *)
  truncated : bool;  (** the [poll] callback tripped mid-coarsening *)
}

val of_ugraph : node_weight:int array -> Oregami_graph.Ugraph.t -> level
(** Converts an undirected static graph to a finest level.
    [node_weight] must have one entry per node; weights should be
    positive so the balance caps are meaningful. *)

val level_ugraph : level -> Oregami_graph.Ugraph.t
(** Back-conversion for passes that want the {!Oregami_graph.Ugraph}
    view of a level (e.g. NN-Embed on the coarsest graph). *)

val coarsen :
  ?max_levels:int ->
  ?blossom_limit:int ->
  ?poll:(int -> bool) ->
  rng:Oregami_prelude.Rng.t ->
  target:int ->
  level ->
  hierarchy
(** [coarsen ~rng ~target finest] contracts heavy-edge matchings until
    at most [target] nodes remain (or [max_levels], default 40, is
    hit — then a final block-collapse level forces the node count down
    to [target]).  Deterministic for a fixed rng state.  [blossom_limit]
    (default 256) switches between exact Blossom matching and the
    randomized heavy-edge matching.  When [poll] (called with the cost
    of the work about to be done) returns [false], coarsening stops
    early with the same forced collapse, and the hierarchy is marked
    [truncated] — the anytime contract. *)

val project : hierarchy -> int array -> int array
(** [project h coarse_assign] composes the level maps: the finest-level
    assignment obtained by giving every finest node the value of its
    coarsest ancestor.  [coarse_assign] must have length
    [h.levels.(Array.length h.levels - 1).lv_n]. *)

val total_node_weight : level -> int
