(** The paper's model of a parallel computation (§2): a weighted,
    colored directed graph [G = (V, E₁, …, E_c)].

    Each node is a task; each edge set [E_k] is one {e communication
    phase} (conceptually a colour) whose directed edges carry message
    volumes; node weights give per-execution-phase task costs; and a
    {!Phase_expr.t} describes the dynamic behaviour. *)

type comm_phase = {
  cp_name : string;
  edges : Oregami_graph.Digraph.t;  (** edge weight = message volume *)
}

type exec_phase = {
  ep_name : string;
  costs : int array;  (** per-task execution time estimate *)
}

type t = private {
  tg_name : string;
  n : int;
  node_labels : string array;
  node_types : string array;
  node_requires : string array;
      (** per-task required processor capability class ([""] = none);
          surfaced from LaRCS [requires] annotations and enforced by
          the mapper's constraint layer *)
  comm_phases : comm_phase list;
  exec_phases : exec_phase list;
  expr : Phase_expr.t;
  declared_symmetric : bool;
      (** the LaRCS program declared [nodesymmetric] *)
  declared_family : string option;
      (** the LaRCS program named a well-known family, e.g. ["ring"] *)
}

val make :
  ?node_labels:string array ->
  ?node_types:string array ->
  ?node_requires:string array ->
  ?declared_symmetric:bool ->
  ?declared_family:string ->
  name:string ->
  n:int ->
  comm_phases:(string * Oregami_graph.Digraph.t) list ->
  exec_phases:(string * int array) list ->
  expr:Phase_expr.t ->
  unit ->
  (t, string) result
(** Validates: positive [n], unique phase names, each phase digraph on
    exactly [n] nodes, each cost array of length [n] (likewise
    [node_requires] when given), and a well-formed phase expression
    over the declared names. *)

val make_exn :
  ?node_labels:string array ->
  ?node_types:string array ->
  ?node_requires:string array ->
  ?declared_symmetric:bool ->
  ?declared_family:string ->
  name:string ->
  n:int ->
  comm_phases:(string * Oregami_graph.Digraph.t) list ->
  exec_phases:(string * int array) list ->
  expr:Phase_expr.t ->
  unit ->
  t

val comm_phase : t -> string -> comm_phase option

val exec_phase : t -> string -> exec_phase option

val comm_names : t -> string list

val exec_names : t -> string list

val static_graph : t -> Oregami_graph.Ugraph.t
(** The classic static task graph: the undirected union over every
    communication phase, each phase's volume scaled by how many times
    it occurs in the phase expression (so contraction optimizes total
    traffic over the whole computation). *)

val static_graph_unit : t -> Oregami_graph.Ugraph.t
(** Like {!static_graph} but each phase counted once — the topology of
    communication, with raw volumes. *)

val total_volume : t -> int
(** Total message volume over the full trace. *)

val total_exec_cost : t -> int

val max_comm_degree : t -> int
(** Maximum number of distinct neighbours of any task in the static
    graph. *)

val phase_volume : t -> string -> int
(** Message volume of one occurrence of a communication phase. *)

val pp_summary : Format.formatter -> t -> unit
