module Digraph = Oregami_graph.Digraph
module Ugraph = Oregami_graph.Ugraph

type comm_phase = { cp_name : string; edges : Digraph.t }

type exec_phase = { ep_name : string; costs : int array }

type t = {
  tg_name : string;
  n : int;
  node_labels : string array;
  node_types : string array;
  node_requires : string array;
  comm_phases : comm_phase list;
  exec_phases : exec_phase list;
  expr : Phase_expr.t;
  declared_symmetric : bool;
  declared_family : string option;
}

let duplicates names =
  let sorted = List.sort compare names in
  let rec find = function
    | a :: (b :: _ as rest) -> if a = b then Some a else find rest
    | [ _ ] | [] -> None
  in
  find sorted

let make ?node_labels ?node_types ?node_requires ?(declared_symmetric = false)
    ?declared_family ~name ~n ~comm_phases ~exec_phases ~expr () =
  let ( let* ) r f = Result.bind r f in
  let* () = if n > 0 then Ok () else Error "task graph needs at least one task" in
  let cp_names = List.map fst comm_phases and ep_names = List.map fst exec_phases in
  let* () =
    match duplicates (cp_names @ ep_names) with
    | Some d -> Error (Printf.sprintf "duplicate phase name %S" d)
    | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (pname, g) ->
        let* () = acc in
        if Digraph.node_count g = n then Ok ()
        else Error (Printf.sprintf "phase %S is over %d nodes, task graph has %d" pname
                      (Digraph.node_count g) n))
      (Ok ()) comm_phases
  in
  let* () =
    List.fold_left
      (fun acc (pname, costs) ->
        let* () = acc in
        if Array.length costs = n then Ok ()
        else Error (Printf.sprintf "exec phase %S has %d costs, task graph has %d tasks"
                      pname (Array.length costs) n))
      (Ok ()) exec_phases
  in
  let* () = Phase_expr.well_formed ~comms:cp_names ~execs:ep_names expr in
  let node_labels =
    match node_labels with Some l -> l | None -> Array.init n string_of_int
  in
  let node_types = match node_types with Some l -> l | None -> Array.make n "task" in
  let node_requires =
    match node_requires with Some l -> l | None -> Array.make n ""
  in
  let* () =
    if
      Array.length node_labels = n
      && Array.length node_types = n
      && Array.length node_requires = n
    then Ok ()
    else Error "node label/type/requires arrays must have one entry per task"
  in
  Ok
    {
      tg_name = name;
      n;
      node_labels;
      node_types;
      node_requires;
      comm_phases = List.map (fun (cp_name, edges) -> { cp_name; edges }) comm_phases;
      exec_phases = List.map (fun (ep_name, costs) -> { ep_name; costs }) exec_phases;
      expr;
      declared_symmetric;
      declared_family;
    }

let make_exn ?node_labels ?node_types ?node_requires ?declared_symmetric
    ?declared_family ~name ~n ~comm_phases ~exec_phases ~expr () =
  match
    make ?node_labels ?node_types ?node_requires ?declared_symmetric ?declared_family
      ~name ~n ~comm_phases ~exec_phases ~expr ()
  with
  | Ok tg -> tg
  | Error msg -> invalid_arg ("Taskgraph.make_exn: " ^ msg)

let comm_phase tg name = List.find_opt (fun cp -> cp.cp_name = name) tg.comm_phases

let exec_phase tg name = List.find_opt (fun ep -> ep.ep_name = name) tg.exec_phases

let comm_names tg = List.map (fun cp -> cp.cp_name) tg.comm_phases

let exec_names tg = List.map (fun ep -> ep.ep_name) tg.exec_phases

let static_graph_scaled scale tg =
  let g = Ugraph.create tg.n in
  List.iter
    (fun cp ->
      let k = scale cp in
      if k > 0 then
        List.iter
          (fun (u, v, w) -> if u <> v then Ugraph.add_edge ~w:(w * k) g u v)
          (Digraph.edges cp.edges))
    tg.comm_phases;
  g

let static_graph tg = static_graph_scaled (fun cp -> Phase_expr.count_comm tg.expr cp.cp_name) tg

let static_graph_unit tg = static_graph_scaled (fun _ -> 1) tg

let phase_volume tg name =
  match comm_phase tg name with
  | Some cp -> Digraph.total_weight cp.edges
  | None -> invalid_arg (Printf.sprintf "Taskgraph.phase_volume: unknown phase %S" name)

let total_volume tg =
  List.fold_left
    (fun acc cp ->
      acc + (Phase_expr.count_comm tg.expr cp.cp_name * Digraph.total_weight cp.edges))
    0 tg.comm_phases

let total_exec_cost tg =
  List.fold_left
    (fun acc ep ->
      acc
      + Phase_expr.count_exec tg.expr ep.ep_name * Array.fold_left ( + ) 0 ep.costs)
    0 tg.exec_phases

let max_comm_degree tg = Ugraph.max_degree (static_graph_unit tg)

let pp_summary fmt tg =
  Format.fprintf fmt "@[<v>task graph %S: %d tasks" tg.tg_name tg.n;
  List.iter
    (fun cp ->
      Format.fprintf fmt "@,  comm phase %s: %d edges, volume %d" cp.cp_name
        (Digraph.edge_count cp.edges) (Digraph.total_weight cp.edges))
    tg.comm_phases;
  List.iter
    (fun ep ->
      Format.fprintf fmt "@,  exec phase %s: total cost %d" ep.ep_name
        (Array.fold_left ( + ) 0 ep.costs))
    tg.exec_phases;
  Format.fprintf fmt "@,  phase expression: %s" (Phase_expr.to_string tg.expr);
  Format.fprintf fmt "@]"
