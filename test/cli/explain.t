The --explain flag dumps the pipeline statistics after the mapping:
which strategies were tried, why the others were rejected, candidate
scores under the completion model, and the pass counters.  Wall-clock
columns vary between runs, so every decimal is filtered.

  $ oregami map voting -t hypercube:2 --explain | sed -E 's/[0-9]+\.[0-9]+/*/g'
  mapping "voting" onto hypercube(2) via group-theoretic
    8 tasks -> 4 clusters -> 4 processors
    routed edges: 16, dilation max 2 avg *
  
  metric                             value
  -----------------------  ---------------
  strategy                 group-theoretic
  tasks                                  8
  clusters                               4
  processors                             4
  max tasks/proc                         2
  load imbalance                     *
  total IPC volume                      16
  dilation (max)                         2
  dilation (avg)                     *
  max link contention                    5
  completion time (model)               24
  
  strategy attempts:
  strategy     outcome     ms                                           detail
  --------  ----------  -----  -----------------------------------------------
  canned      rejected  *             no declared or detected graph family
  systolic    rejected  *  communication is not affine on a single lattice
  group     produced 1  *
  candidates (score = METRICS completion-time model):
  strategy          mapping  score  valid
  --------  ---------------  -----  -----  ----------
  group     group-theoretic      -    yes  <-- winner
  pipeline counters:
  counter               value
  --------------------  -----
  attempts                  3
  produced                  1
  rejected                  2
  skipped                   0
  crashed                   0
  candidates                1
  valid candidates          1
  matching rounds           9
  refine swaps              0
  distcache hop builds      1
  phase wall-clock:
  phase         ms
  ---------  -----
  distcache  *
  produce    *
  embed      *
  route      *
  validate   *
  degradation: full
  total pipeline time: * ms
  
  (pipeline-stats
   (attempts
    ((strategy canned) (outcome (rejected "no declared or detected graph family")) (seconds *))
    ((strategy systolic) (outcome (rejected "communication is not affine on a single lattice")) (seconds *))
    ((strategy group) (outcome (produced 1)) (seconds *)))
   (candidates
    ((strategy group) (mapping "group-theoretic") (score ()) (valid true) (winner true)))
   (counters (attempts 3) (produced 1) (rejected 2) (skipped 0) (crashed 0) (candidates 1) (valid-candidates 1) (matching-rounds 9) (refine-swaps 0) (distcache-hop-builds 1))
   (phases (distcache *) (produce *) (embed *) (route *) (validate *))
   (winner ((strategy group) (mapping "group-theoretic")))
   (degradation full)
   (seconds *))

Restricting the registry turns the dispatch into a scored portfolio:

  $ oregami map nbody -t hypercube:3 --only mwm | head -3
  mapping "nbody" onto hypercube(3) via mwm+nn
    15 tasks -> 8 clusters -> 8 processors
    routed edges: 23, dilation max 3 avg 1.652

Excluding a strategy removes it from the selection:

  $ oregami map fft -p d=3 -t hypercube:3 --exclude canned | head -1
  mapping "fft" onto hypercube(3) via group-theoretic

When no selected strategy applies, the exit is non-zero and stderr
carries the per-strategy rejection reasons:

  $ oregami map nbody -t ring:8 --only canned
  oregami: no mapping strategy produced a valid candidate: canned: no declared or detected graph family
  oregami:   canned: no declared or detected graph family
  [1]

Unknown strategy names are rejected up front:

  $ oregami map nbody -t ring:8 --only nosuch
  oregami: unknown strategies: nosuch (known: canned, systolic, group, mwm, tiled, blocks, multilevel, kl, stone, random, naive-block, round-robin)
  [1]
