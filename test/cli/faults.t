A missing program file is a usage error: one line on stderr, exit 2:

  $ oregami map ./no-such-file.larcs -t ring:4
  oregami: ./no-such-file.larcs: No such file or directory
  [2]

  $ oregami parse ./no-such-file.larcs
  oregami: ./no-such-file.larcs: No such file or directory
  [2]

Mapping around dead processors and links (the degraded name records
the faults):

  $ oregami map nbody -p n=14 -t hypercube:4 --kill-procs 3,7 --kill-links 0 | head -4
  injected faults: 2 dead processors (3,7), 1 dead link (0)
  
  mapping "nbody" onto hypercube(4)[-2p,-1l] via mwm+nn
    14 tasks -> 14 clusters -> 16 processors


Symmetry strategies decline degraded machines with a named reason:

  $ oregami map nbody -p n=14 -t hypercube:4 --kill-procs 3 --only canned
  injected faults: 1 dead processor (3)
  
  oregami: no mapping strategy produced a valid candidate: canned: degraded topology (1 dead processor (3)): canned requires the intact network
  oregami:   canned: degraded topology (1 dead processor (3)): canned requires the intact network
  [1]


Bad fault ids are named errors, not crashes:

  $ oregami map nbody -p n=14 -t hypercube:4 --kill-procs 99
  oregami: dead processor 99 out of range (hypercube(4) has 16 processors)
  [1]

  $ oregami map nbody -p n=14 -t ring:8 --kill-procs 0,1,2,3,4,5,6,7
  oregami: faults kill every processor of ring(8)
  [1]

Faults that disconnect the machine report the surviving partitions:

  $ oregami map nbody -p n=4 -t line:4 --kill-procs 1
  oregami: faults disconnect line(4): surviving processors split into 2 partitions {0} / {2,3}
  [1]

Seeded random faults draw counts instead of ids:

  $ oregami map nbody -p n=14 -t hypercube:4 --fault-seed 7 --kill-procs 2 | head -1
  injected faults: 2 dead processors (3,5)

Repair compares minimum-disruption evacuation against a from-scratch
remap:

  $ oregami repair nbody -p n=16 -t hypercube:4 --kill-procs 3,7 | head -6
  faults: 2 dead processors (3,7)
  
  plan                             tasks moved  migration  makespan
  -------------------------------  -----------  ---------  --------
  before faults (group-theoretic)            -          -       304
  minimum-disruption repair                  2         36       472


  $ oregami repair nbody -p n=16 -t hypercube:4
  oregami: nothing to repair (give --kill-procs and/or --kill-links)
  [1]
