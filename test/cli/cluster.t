Online cluster lifecycle: a trace of arriving and departing jobs
leases regions of a live machine; a mid-trace kill is healed by
pricing minimum-disruption repair against a from-scratch remap, and
the revive returns the processor to the free pool.  --explain streams
every decision:

  $ cat > trace.txt <<'EOF'
  > # two tenants on a 4x4 torus
  > arrive alpha synth:grid:12:1 procs=6
  > arrive beta synth:ring:8:2 procs=4
  > kill procs=0
  > revive procs=0
  > depart alpha
  > EOF

  $ oregami cluster trace.txt -t torus:4x4 --explain
  [1] admit alpha: 12 tasks on 6 procs {0,1,2,3,4,12}, makespan 8
  [2] admit beta: 8 tasks on 4 procs {5,6,7,9}, makespan 8
  [3] chaos: kill procs 0 (1 dead processor (0))
  [3] alpha lost procs {0}
  [3] heal alpha: repair wins (18+8 vs remap 36+10)
  [3] repair alpha: 2 moved, migration 18, makespan 8, region {1,2,3,4,12,13,14}
  [3] reroute beta: 0 moved, migration 0, makespan 8, region {5,6,7,9}
  [4] chaos: revive procs 0 (no faults)
  [5] depart alpha: released {1,2,3,4,12,13,14}
  events 5: admitted 2, completed 1, cancelled 0, refused 0, shed 0
  healing: repairs 1, remaps 0, evictions 0, repacks 0 (declined 0), migration 18
  chaos: applied 2, refused 0
  final: utilization 0.25, fragmentation 0.00, running 1, free 12
  running: beta

A synthetic arrival stream with a chaos schedule injected from the
command line (chaos events count toward the total):

  $ oregami cluster synth:12:3 -t torus:4x4 --chaos '4:kill-procs=5;9:revive-procs=5'
  events 14: admitted 8, completed 4, cancelled 0, refused 0, shed 0
  healing: repairs 0, remaps 0, evictions 0, repacks 0 (declined 0), migration 0
  chaos: applied 2, refused 0
  final: utilization 0.38, fragmentation 0.00, running 4, free 10
  running: job2 job5 job6 job8

A job the machine can never hold is refused by name, and any refusal
makes the run exit 1:

  $ printf 'arrive big synth:grid:10:1 procs=99\n' > big.txt
  $ oregami cluster big.txt -t mesh:2x2
  events 1: admitted 0, completed 0, cancelled 0, refused 1, shed 0
  healing: repairs 0, remaps 0, evictions 0, repacks 0 (declined 0), migration 0
  chaos: applied 0, refused 0
  final: utilization 0.00, fragmentation 0.00, running 0, free 4
  refused big: requested 99 processors, machine has 4
  [1]

Malformed traces and chaos specs are named usage errors:

  $ printf 'launch x\n' > bad.txt
  $ oregami cluster bad.txt -t mesh:2x2
  oregami: line 1: unknown trace verb "launch" (want arrive, depart, kill or revive)
  [1]

  $ oregami cluster synth:5:1 -t torus:4x4 --chaos oops
  oregami: bad chaos event "oops" (want AT:ACTION)
  [1]
