Parallel batch service: --jobs N processes the batch on a domain pool
with shared compiled-program and topology caches, but the output is
byte-identical to --jobs 1 (wall-clock milliseconds aside) and still
arrives in request order.

  $ cat > requests.txt <<'EOF'
  > # repeated program x topology pairs: the caches' home turf
  > voting hypercube:2
  > nbody ring:8 seed=5
  > voting hypercube:2 seed=7
  > ./no-such.larcs ring:4
  > nbody ring:8 seed=5
  > voting hypercube:2
  > nbody torus:4x4 fuel=100
  > voting hypercube:2 deadline-ms=0
  > EOF

  $ oregami batch requests.txt --jobs 1 | sed -E 's/[0-9]+\.[0-9]+/*/g' > sequential.out
  $ oregami batch requests.txt --jobs 4 | sed -E 's/[0-9]+\.[0-9]+/*/g' > parallel.out
  $ cmp sequential.out parallel.out && echo identical
  identical

  $ cat parallel.out
  1	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-
  2	nbody	ring:8	ok	mwm+nn	full	454	*	1	795	-
  3	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-
  4	./no-such.larcs	ring:4	error	-	-	-	*	0	0	./no-such.larcs: No such file or directory
  5	nbody	ring:8	ok	mwm+nn	full	454	*	1	795	-
  6	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-
  7	nbody	torus:4x4	ok	group-theoretic	truncated(group-contract,nn-embed,refine,mm-route)	338	*	3	508	-
  8	voting	hypercube:2	ok	fallback:block	fallback	30	*	3	84	-

The poisoned request (line 4) failed without aborting the batch, and
the exit code reports the partial failure under any pool width:

  $ oregami batch requests.txt --jobs 4 > /dev/null
  [1]

The short flag and a width larger than the batch both work:

  $ echo 'voting hypercube:2' | oregami serve -j 16 | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-

A non-positive width is a usage error:

  $ oregami serve --jobs 0 < requests.txt
  oregami: --jobs must be at least 1
  [2]
