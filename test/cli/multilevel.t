The multilevel tier declines graphs that fit the flat strategies, and
`--only multilevel` forces it.  Synthetic specs (synth:FAMILY:N[:SEED])
build the large instances directly, skipping the LaRCS front-end.
Wall-clock columns vary between runs, so every decimal is filtered.

A small graph is not multilevel territory — the dispatch skips the
tier with a named reason:

  $ oregami map synth:rmat:100 -t torus:4x4 --explain | grep -E '^multilevel +skipped' | sed -E 's/ +/ /g;s/[0-9]+\.[0-9]+/*/g'
  multilevel skipped * graph fits the flat strategies (100 <= 2048 tasks); force with --only multilevel

but `--only multilevel` forces it anyway:

  $ oregami map synth:grid:64 -t torus:4x4 --only multilevel --explain | sed -E 's/[0-9]+\.[0-9]+/*/g' | head -8
  mapping "synth:grid:64" onto torus(4x4) via multilevel
    64 tasks -> 16 clusters -> 16 processors
    routed edges: 48, dilation max 1 avg *
  
  metric                        value
  -----------------------  ----------
  strategy                 multilevel
  tasks                            64

A 4096-task grid exceeds the flat sweet spot, so the plain dispatch
already picks the multilevel tier:

  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --explain | sed -E 's/[0-9]+\.[0-9]+/*/g'
  mapping "synth:grid:4096" onto torus(8x8) via multilevel
    4096 tasks -> 64 clusters -> 64 processors
    routed edges: 1214, dilation max 5 avg *
  
  metric                        value
  -----------------------  ----------
  strategy                 multilevel
  tasks                          4096
  clusters                         64
  processors                       64
  max tasks/proc                   68
  load imbalance                *
  total IPC volume               1214
  dilation (max)                    5
  dilation (avg)                *
  max link contention              29
  completion time (model)         102
  
  strategy attempts:
  strategy       outcome      ms  detail
  ----------  ----------  ------  ------
  multilevel  produced 1  *
  candidates (score = METRICS completion-time model):
  strategy       mapping  score  valid
  ----------  ----------  -----  -----  ----------
  multilevel  multilevel    102    yes  <-- winner
  pipeline counters:
  counter                    value
  -------------------------  -----
  attempts                       1
  produced                       1
  rejected                       0
  skipped                        0
  crashed                        0
  candidates                     1
  valid candidates               1
  matching rounds               10
  refine swaps                  10
  distcache hop builds           1
  multilevel levels              8
  multilevel level 0 nodes    4096
  multilevel level 1 nodes    2238
  multilevel level 2 nodes    1214
  multilevel level 3 nodes     665
  multilevel level 4 nodes     361
  multilevel level 5 nodes     194
  multilevel level 6 nodes      99
  multilevel level 7 nodes      64
  multilevel coarsest nodes     64
  multilevel refine moves      676
  multilevel refine gain       294
  coarse route pairs           213
  coarse route messages       8064
  phase wall-clock:
  phase          ms
  ---------  ------
  distcache   *
  produce    *
  place       *
  route       *
  validate    *
  degradation: full
  total pipeline time: * ms
  
  (pipeline-stats
   (attempts
    ((strategy multilevel) (outcome (produced 1)) (seconds *)))
   (candidates
    ((strategy multilevel) (mapping "multilevel") (score 102) (valid true) (winner true)))
   (counters (attempts 1) (produced 1) (rejected 0) (skipped 0) (crashed 0) (candidates 1) (valid-candidates 1) (matching-rounds 10) (refine-swaps 10) (distcache-hop-builds 1) (multilevel-levels 8) (multilevel-level-0-nodes 4096) (multilevel-level-1-nodes 2238) (multilevel-level-2-nodes 1214) (multilevel-level-3-nodes 665) (multilevel-level-4-nodes 361) (multilevel-level-5-nodes 194) (multilevel-level-6-nodes 99) (multilevel-level-7-nodes 64) (multilevel-coarsest-nodes 64) (multilevel-refine-moves 676) (multilevel-refine-gain 294) (coarse-route-pairs 213) (coarse-route-messages 8064))
   (phases (distcache *) (produce *) (place *) (route *) (validate *))
   (winner ((strategy multilevel) (mapping "multilevel")))
   (degradation full)
   (seconds *))

A malformed spec is a usage error naming the offending field:

  $ oregami map synth:grid:zero -t torus:4x4
  oregami: bad synthetic spec "synth:grid:zero": task count "zero" is not an integer
  [2]
  $ oregami map synth:grid:0 -t torus:4x4
  oregami: bad synthetic spec "synth:grid:0": task count must be positive, got 0
  [2]
  $ oregami map synth:mobius:100 -t torus:4x4
  oregami: bad synthetic spec "synth:mobius:100": unknown family "mobius" (families: grid, ring, tree, rmat)
  [2]
  $ oregami map synth:rmat:64:soon -t torus:4x4
  oregami: bad synthetic spec "synth:rmat:64:soon": seed "soon" is not an integer
  [2]
  $ oregami map synth:rmat:64:1:9 -t torus:4x4
  oregami: bad synthetic spec "synth:rmat:64:1:9": want synth:FAMILY:N[:SEED] (3 or 4 fields, got 5)
  [2]
