The routing tier: full MM-Route below the multilevel threshold, the
traffic-aggregated coarse router above (--routing auto, the default),
and explicit --routing coarse anywhere.

Coarse routing on a forced multilevel run; the per-pass wall-clock
table now shows all four passes (decimals filtered):

  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --routing coarse --explain | sed -n '/phase wall-clock:/,/^degradation/p' | sed -E 's/[0-9]+\.[0-9]+/*/g'
  phase wall-clock:
  phase          ms
  ---------  ------
  distcache   *
  produce    *
  place       *
  route       *
  validate    *
  degradation: full

The aggregated demands and fanned-out messages land in the pipeline
counters:

  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --routing coarse --explain | grep -E 'coarse route' | sed -E 's/ +/ /g'
  coarse route pairs 213
  coarse route messages 8064

Output is byte-identical across pool widths:

  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --routing coarse --jobs 1 > j1.out
  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --routing coarse --jobs 4 > j4.out
  $ cmp j1.out j4.out && echo identical
  identical

Explicit mm-route is always respected, even above the threshold where
auto would pick coarse; on this instance the aggregated router even
edges out the per-message one under the completion model:

  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --routing mm-route | grep 'completion'
  completion time (model)         106

  $ oregami map synth:grid:4096 -t torus:8x8 --only multilevel --routing coarse | grep 'completion'
  completion time (model)         102

An unknown routing value is a usage error listing the valid values:

  $ oregami map synth:grid:64 -t torus:4x4 --routing bogus
  oregami: unknown routing "bogus" (valid: mm-route, oblivious, coarse, auto)
  [1]

  $ oregami map synth:grid:64 -t torus:4x4 --jobs 0
  oregami: --jobs must be at least 1
  [2]

The serve request grammar takes the same values and names them in its
parse error (elapsed-ms filtered):

  $ echo 'voting hypercube:2 routing=coarse' | oregami serve | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	voting	hypercube:2	ok	group-theoretic	full	23	*	1	131	-

  $ echo 'voting hypercube:2 routing=bogus' | oregami serve
  1	voting	hypercube:2	error	-	-	-	0.000	0	0	unknown routing "bogus" (valid: mm-route, oblivious, coarse, auto)
  [1]
