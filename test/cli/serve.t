The batch mapping service: one request per line in, one result line
per request out, and the batch never aborts on a poisoned request.

  $ cat > requests.txt <<'EOF'
  > # comments and blank lines are skipped
  > 
  > voting hypercube:2
  > ./no-such.larcs ring:4
  > nbody ring:8 deadline-ms=0
  > EOF

Three requests, three result lines (wall-clock milliseconds filtered);
the missing file fails but the deadline-0 request still yields a valid
(degraded) mapping, and the exit code reflects the partial failure.

  $ oregami batch requests.txt | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-
  2	./no-such.larcs	ring:4	error	-	-	-	*	0	0	./no-such.larcs: No such file or directory
  3	nbody	ring:8	ok	mwm+nn	truncated(mwm-contract,nn-embed,refine,mm-route)	460	*	3	135	-

The exit code (laundered by the sed pipe above) is 1 when any request
failed, 0 when all succeeded:

  $ oregami batch requests.txt > /dev/null
  [1]

  $ echo 'voting hypercube:2' | oregami serve > /dev/null

serve is the same loop reading stdin:

  $ echo 'voting hypercube:2' | oregami serve | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-

s-expression output for tooling:

  $ echo 'voting hypercube:2' | oregami serve --sexp | sed -E 's/[0-9]+\.[0-9]+/*/g'
  (result (id 1) (program "voting") (topology "hypercube:2") (status ok) (strategy "group-theoretic") (degradation "full") (completion 24) (elapsed-ms *) (attempts 1) (fuel 159))

A malformed request line is reported on its own result line, and the
rest of the batch still runs:

  $ printf 'lonely\nvoting hypercube:2\n' | oregami serve | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	lonely	-	error	-	-	-	*	0	0	want: PROGRAM TOPOLOGY [key=value ...]
  2	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-

A missing request file is a usage error:

  $ oregami batch ./missing-requests.txt
  oregami: ./missing-requests.txt: No such file or directory
  [2]
