The long-lived daemon: the batch service behind a Unix socket, with
admission control, quotas, a live stats verb, and graceful SIGTERM
drain.  (Socket paths live under /tmp because sun_path caps them at
~108 bytes, far shorter than cram working directories.)

  $ SOCK=$(mktemp -u /tmp/oregami-cram-XXXXXX.sock)
  $ oregami daemon --socket "$SOCK" --jobs 2 2>daemon.log &
  $ DAEMON=$!

Wait for the socket to appear:

  $ for i in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done

The client forwards request lines and prints one answer line each —
the same bytes the batch service emits:

  $ printf 'voting hypercube:2\n' | oregami client --socket "$SOCK" | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	voting	hypercube:2	ok	group-theoretic	full	24	*	1	159	-

Control verbs: ping answers pong, stats answers one s-expression of
live counters:

  $ printf 'ping\n' | oregami client --socket "$SOCK"
  pong
  $ printf 'stats\n' | oregami client --socket "$SOCK" | grep -c '(stats (served 1) (shed 0)'
  1
  $ printf 'stats\n' | oregami client --socket "$SOCK" | grep -c '(latency-ms (p50 '
  1

Malformed lines are answered in place, the connection stays up:

  $ printf 'lonely\nvoting hypercube:2 fuel=1 fuel=2\n' | oregami client --socket "$SOCK" | cut -f4,11
  error	want: PROGRAM TOPOLOGY [key=value ...]
  error	duplicate key "fuel" (each key may appear once)

SIGTERM drains gracefully: exit 0, socket file removed:

  $ kill -TERM $DAEMON
  $ wait $DAEMON
  $ [ -e "$SOCK" ] && echo "socket left behind" || echo "socket removed"
  socket removed

Quotas reject explicit over-asks by name:

  $ SOCK2=$(mktemp -u /tmp/oregami-cram-XXXXXX.sock)
  $ oregami daemon --socket "$SOCK2" --jobs 1 --fuel-cap 50 2>daemon2.log &
  $ DAEMON2=$!
  $ for i in $(seq 1 100); do [ -S "$SOCK2" ] && break; sleep 0.05; done
  $ printf 'voting hypercube:2 fuel=100\n' | oregami client --socket "$SOCK2" | cut -f4,11
  error	quota: fuel=100 exceeds cap 50
  $ kill -TERM $DAEMON2
  $ wait $DAEMON2

The daemon needs an address:

  $ oregami daemon
  oregami: give exactly one of --socket PATH or --port N
  [2]
