Placement constraints thread through every layer: pins, forbids,
capability-class requirements, and skip-placement classes.  The
`classes=` topology suffix tags processors; `--pin/--forbid/--require/
--skip-class` constrain the mapping; validate-drc re-checks every rule
against the final assignment by name.

A pin plus a class requirement on a classed torus.  The dispatch
strategies stand aside (they are constraint-unaware), the embedding
strategies compete under the rules, and the winner passes the DRC:

  $ oregami map jacobi -t "torus:4x4:classes=mem@0-3" --pin 0=5 --require 1=mem --explain | grep -E '^(canned|systolic|multilevel) +skipped|validate-drc' | sed -E 's/ +/ /g;s/[0-9]+\.[0-9]+/*/g'
  canned skipped * constraints present: canned is constraint-unaware (pins/requires/forbids need the embedding strategies)
  systolic skipped * constraints present: systolic is constraint-unaware (pins/requires/forbids need the embedding strategies)
  multilevel skipped * constraints present: multilevel refinement is constraint-unaware
  validate-drc: clean (pin 0=5 require 1=mem)

Candidates that merge a required task with an incompatibly pinned one
are rejected with the violated rule spelled out:

  $ oregami map jacobi -t "torus:4x4:classes=mem@0-3" --pin 0=5 --require 1=mem --explain | grep -o 'cluster 0 requires class "mem" but is pinned to processor 5 of class "compute"' | sort -u
  cluster 0 requires class "mem" but is pinned to processor 5 of class "compute"

An infeasible spec is refused up front, naming the rule:

  $ oregami map jacobi -t torus:4x4 --pin 0=99
  oregami: invalid constraints: pin: processor 99 out of range (topology has 16 processors)
  [1]
  $ oregami map jacobi -t torus:4x4 --pin 0=1 --pin 0=2
  oregami: invalid constraints: task 0 pinned to both processors 1 and 2
  [1]
  $ oregami map jacobi -t "torus:4x4:classes=mem@0-3" --require 5=gpu
  oregami: invalid constraints: task 5 requires class "gpu" but no alive placeable processor offers it (classes: compute, mem)
  [1]

skip-class carves processors out of placement entirely (they still
route traffic):

  $ oregami map jacobi -t "torus:4x4:classes=io@12-15" --skip-class io --explain | grep -E 'processors|max tasks/proc|validate-drc' | sed -E 's/ +/ /g'
   64 tasks -> 12 clusters -> 16 processors
  processors 16
  max tasks/proc 6
  validate-drc: clean (skip io)

Repair honours the constraints the mapping was produced under,
recompiled against the degraded machine.  A pin whose processor
survives stays put; a pin on a dead processor refuses by name:

  $ oregami repair jacobi -t torus:4x4 --kill-procs 5 --pin 0=3 | grep -E 'faults|minimum' | sed -E 's/ +/ /g;s/[0-9]+/N/g'
  faults: N dead processor (N)
  before faults (mwm+nn) - - N
  minimum-disruption repair N N N

  $ oregami repair jacobi -t torus:4x4 --kill-procs 3 --pin 0=3
  oregami: constraints unsatisfiable after faults: task 0 pinned to dead processor 3
  [1]

The batch service takes the same rules as request keys (`:` separates
inside the values because `=` binds the key):

  $ printf 'jacobi torus:4x4:classes=mem@0-3 pin=0:5 require=1:mem\njacobi torus:4x4 pin=0:99\n' | oregami serve | sed -E 's/[0-9]+\.[0-9]+/*/g'
  1	jacobi	torus:4x4:classes=mem@0-3	ok	tiled+nn	full	132	*	1	3168	-
  2	jacobi	torus:4x4	error	-	-	-	*	3	0	invalid constraints: pin: processor 99 out of range (topology has 16 processors)
