(* Fault injection, degraded-topology mapping, and repair (the
   robustness acceptance scenarios: hypercube(4) with 2 dead processors
   and 1 dead link must map cleanly; repair must move strictly fewer
   tasks than a from-scratch remap; disconnecting faults must be a
   named Error). *)

open Oregami

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let topo_of s = Topology.make (Result.get_ok (Topology.parse s))

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let expect_error what pred = function
  | Ok _ -> Alcotest.failf "%s: expected an Error" what
  | Error e ->
    Alcotest.(check bool) (Printf.sprintf "%s: error names the cause (%s)" what e) true (pred e)

(* hypercube(4) with processors 3 and 7 dead plus one alive-alive link
   cut: the shared acceptance scenario *)
let acceptance_view () =
  let base = topo_of "hypercube:4" in
  let dead_link =
    match Topology.link_between base 0 1 with
    | Some l -> l
    | None -> Alcotest.fail "hypercube(4) must have link 0-1"
  in
  let faults = get (Faults.make ~procs:[ 3; 7 ] ~links:[ dead_link ] base) in
  (base, faults, get (Faults.degrade base faults))

let test_degrade_structure () =
  let base, faults, view = acceptance_view () in
  let d = view.Faults.topo in
  Alcotest.(check bool) "degraded flag" true (Topology.is_degraded d);
  Alcotest.(check bool) "base stays pristine" false (Topology.is_degraded base);
  Alcotest.(check int) "node ids preserved" 16 (Topology.node_count d);
  Alcotest.(check int) "14 alive" 14 (Topology.alive_count d);
  Alcotest.(check (list int)) "dead procs" [ 3; 7 ] (Topology.dead_procs d);
  Alcotest.(check bool) "3 is dead" false (Topology.alive d 3);
  Alcotest.(check bool) "0 is alive" true (Topology.alive d 0);
  (* hypercube(4): 32 links; procs 3 and 7 share one link and have
     degree 4 each, so 4 + 4 - 1 = 7 incident links die, plus the cut
     0-1 link *)
  Alcotest.(check int) "surviving links" (32 - 7 - 1) (Topology.link_count d);
  Alcotest.(check int) "dead procs keep no links" 0 (Topology.degree d 3);
  Alcotest.(check (option int)) "cut link absent" None (Topology.link_between d 0 1);
  Alcotest.(check string) "name shows faults" "hypercube(4)[-2p,-1l]" (Topology.name d);
  (* remapped link ids translate back to base ids over the same endpoints *)
  Array.iteri
    (fun i b ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "link %d endpoints" i)
        (Topology.link_endpoints base b) (Topology.link_endpoints d i))
    view.Faults.link_to_base;
  Array.iteri
    (fun b d_id ->
      match d_id with
      | Some i -> Alcotest.(check int) "round trip" b view.Faults.link_to_base.(i)
      | None -> ())
    view.Faults.link_of_base;
  Alcotest.(check bool) "cut base link is dead" true
    (List.for_all (fun l -> view.Faults.link_of_base.(l) = None) faults.Faults.links);
  (* the degraded view rebuilds its own distance cache and leaves the
     base's untouched *)
  let before = Distcache.hop_builds base in
  let dc = Distcache.hops d in
  Alcotest.(check int) "fresh cache slot" 1 (Distcache.hop_builds d);
  Alcotest.(check int) "base cache untouched" before (Distcache.hop_builds base);
  (* distances follow the degraded graph: 0-1 now takes a detour *)
  Alcotest.(check int) "0->1 detours" 3 (Distcache.hop dc 0 1)

let test_fault_validation () =
  let base = topo_of "hypercube:3" in
  expect_error "proc out of range" (fun e -> contains e "out of range")
    (Faults.make ~procs:[ 8 ] base);
  expect_error "link out of range" (fun e -> contains e "out of range")
    (Faults.make ~links:[ 99 ] base);
  expect_error "all dead" (fun e -> contains e "every processor")
    (Faults.make ~procs:(List.init 8 Fun.id) base);
  (* random fault sets are reproducible and in range *)
  let rng = Prelude.Rng.create 42 in
  let f = get (Faults.random rng ~procs:2 ~links:3 base) in
  Alcotest.(check int) "2 random procs" 2 (List.length f.Faults.procs);
  Alcotest.(check int) "3 random links" 3 (List.length f.Faults.links);
  let rng' = Prelude.Rng.create 42 in
  let f' = get (Faults.random rng' ~procs:2 ~links:3 base) in
  Alcotest.(check bool) "seeded draw is deterministic" true (f = f');
  expect_error "too many random procs" (fun e -> contains e "at least one")
    (Faults.random rng ~procs:8 ~links:0 base)

let test_partition_errors () =
  (* killing the middle of a line splits it *)
  let line = topo_of "line:4" in
  expect_error "line split" (fun e -> contains e "partition")
    (Faults.degrade line (get (Faults.make ~procs:[ 1 ] line)));
  (* cutting two ring links splits the ring *)
  let ring = topo_of "ring:6" in
  let l a b = Option.get (Topology.link_between ring a b) in
  expect_error "ring split" (fun e -> contains e "partitions")
    (Faults.degrade ring (get (Faults.make ~links:[ l 0 1; l 3 4 ] ring)));
  (* an isolated-but-alive processor is its own partition *)
  let star = topo_of "bintree:1" in
  expect_error "isolated leaf" (fun e -> contains e "partition")
    (Faults.degrade star (get (Faults.make ~procs:[ 0 ] star)));
  (* one cut that keeps the ring connected is fine *)
  let view = get (Faults.degrade ring (get (Faults.make ~links:[ l 0 1 ] ring))) in
  Alcotest.(check int) "one partition" 1 (List.length (Faults.partitions view.Faults.topo))

let route_links_in_base view (m : Mapping.t) =
  List.concat_map
    (fun pr ->
      List.concat_map
        (fun re -> List.map (fun l -> view.Faults.link_to_base.(l)) re.Mapping.re_route.Routes.links)
        pr.Mapping.pr_edges)
    m.Mapping.routings

let test_map_on_degraded () =
  let _, faults, view = acceptance_view () in
  let spec = Workloads.nbody ~n:14 ~s:2 in
  let compiled = Workloads.compile_exn spec in
  let result, stats = Driver.report ~faults compiled view.Faults.topo in
  let m = get result in
  (* acceptance: no task on a dead processor *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "proc %d alive" p) true
        (Topology.alive view.Faults.topo p))
    (Mapping.assignment m);
  (* acceptance: no phase routed over a dead link (translate surviving
     link ids back to base ids and compare against the fault set) *)
  List.iter
    (fun bl ->
      Alcotest.(check bool) "route avoids dead links" false (List.mem bl faults.Faults.links))
    (route_links_in_base view m);
  (* the symmetry strategies reject with a named reason *)
  let rejections = Stats.rejections stats in
  List.iter
    (fun name ->
      match List.assoc_opt name rejections with
      | Some reason ->
        Alcotest.(check bool)
          (Printf.sprintf "%s names degradation (%s)" name reason)
          true (contains reason "degraded topology")
      | None -> Alcotest.failf "strategy %s should have been rejected" name)
    [ "canned"; "group" ];
  Alcotest.(check bool) "mapping still validates" true (Mapping.validate m = Ok ())

let test_baselines_on_degraded () =
  let _, faults, view = acceptance_view () in
  let compiled = Workloads.compile_exn (Workloads.nbody ~n:14 ~s:1) in
  List.iter
    (fun only ->
      let options = { Driver.default_options with Driver.only = [ only ] } in
      let m = get (Driver.map_compiled ~options ~faults compiled view.Faults.topo) in
      Array.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: proc %d alive" only p)
            true
            (Topology.alive view.Faults.topo p))
        (Mapping.assignment m))
    [ "random"; "naive-block"; "round-robin"; "mwm"; "blocks" ]

let test_repair_vs_remap () =
  let base, faults, _ = acceptance_view () in
  let spec = Workloads.nbody ~n:16 ~s:2 in
  let compiled = Workloads.compile_exn spec in
  let tg = compiled.Larcs.Compile.graph in
  let r = get (Remap.recover ~compiled tg base faults) in
  let repair = r.Remap.rc_repair in
  let degraded = repair.Repair.rp_mapping.Mapping.topo in
  (* every surviving placement is frozen: only dead-processor tasks move *)
  List.iter
    (fun mv ->
      Alcotest.(check bool) "move starts on a dead proc" false
        (Topology.alive degraded mv.Repair.mv_from);
      Alcotest.(check bool) "move ends on an alive proc" true
        (Topology.alive degraded mv.Repair.mv_to))
    repair.Repair.rp_moves;
  Alcotest.(check int) "frozen + moved = tasks" tg.Taskgraph.n
    (repair.Repair.rp_frozen + Repair.moved repair);
  Alcotest.(check bool) "repaired mapping validates" true
    (Mapping.validate repair.Repair.rp_mapping = Ok ());
  (* acceptance: minimum-disruption repair moves strictly fewer tasks
     than mapping the degraded machine from scratch *)
  Alcotest.(check bool)
    (Printf.sprintf "repair moves %d < remap moves %d" (Repair.moved repair)
       r.Remap.rc_remap_moved)
    true
    (Repair.moved repair < r.Remap.rc_remap_moved);
  Alcotest.(check bool) "repair moved someone" true (Repair.moved repair > 0);
  (* both transitions are priced with the same migration model; moving
     anything costs network time *)
  Alcotest.(check bool) "repair migration priced" true (r.Remap.rc_repair_migration > 0);
  Alcotest.(check bool) "remap migration priced" true (r.Remap.rc_remap_migration > 0)

let test_netsim_fault_event () =
  let base, _, _ = acceptance_view () in
  let compiled = Workloads.compile_exn (Workloads.nbody ~n:16 ~s:2) in
  let m = get (Driver.map_compiled compiled base) in
  let event = { Netsim.at_slot = 2; kill_procs = [ 3; 7 ]; kill_links = [] } in
  let r = get (Netsim.run_with_fault m event) in
  Alcotest.(check int) "makespan = pre + migration + post" r.Netsim.rv_makespan
    (r.Netsim.rv_pre_time + r.Netsim.rv_migration_time + r.Netsim.rv_post_time);
  Alcotest.(check int) "delta vs fault-free" r.Netsim.rv_delta
    (r.Netsim.rv_makespan - r.Netsim.rv_fault_free.Netsim.makespan);
  Alcotest.(check bool) "evacuation costs something" true (r.Netsim.rv_migration_time > 0);
  let repaired = r.Netsim.rv_repair.Repair.rp_mapping in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "post-fault placement alive" true
        (Topology.alive repaired.Mapping.topo p))
    (Mapping.assignment repaired);
  (* an empty fault set and a disconnecting one are named errors *)
  expect_error "empty faults" (fun e -> contains e "nothing")
    (Netsim.run_with_fault m { Netsim.at_slot = 0; kill_procs = []; kill_links = [] });
  let line = topo_of "line:4" in
  let lm = get (Driver.map_taskgraph (Workloads.compile_exn (Workloads.nbody ~n:4 ~s:1)).Larcs.Compile.graph line) in
  expect_error "disconnecting fault" (fun e -> contains e "partition")
    (Netsim.run_with_fault lm { Netsim.at_slot = 0; kill_procs = [ 1 ]; kill_links = [] })

let test_incremental_and_routes_degraded () =
  let base = topo_of "hypercube:3" in
  let view = get (Faults.degrade base (get (Faults.make ~procs:[ 5 ] base))) in
  let d = view.Faults.topo in
  (* deterministic routing falls back to surviving shortest routes *)
  let r = Routes.deterministic d 1 7 in
  Alcotest.(check bool) "route avoids the dead proc" true
    (List.for_all (Topology.alive d) r.Routes.nodes);
  (match Routes.ecube d 1 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ecube must refuse degraded topologies");
  (* the incremental placer never lands on a dead processor *)
  let g = Graph.Ugraph.create 6 in
  List.iter (fun (u, v) -> Graph.Ugraph.add_edge g u v) [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
  let placed = Mapper.Incremental.place g ~activation:(Array.make 6 0) ~cap:1 d in
  Array.iter
    (fun p -> Alcotest.(check bool) "placement alive" true (Topology.alive d p))
    placed

(* revive: the inverse of degrade, with stable ids *)
let test_revive () =
  let base, faults, view = acceptance_view () in
  (* partial revive: bring processor 3 back, keep 7 and the cut link dead *)
  let partial = get (Faults.revive ~procs:[ 3 ] view) in
  Alcotest.(check (list int)) "7 still dead" [ 7 ]
    partial.Faults.faults.Faults.procs;
  Alcotest.(check bool) "3 alive again" true (Topology.alive partial.Faults.topo 3);
  Alcotest.(check bool) "7 still dead in topo" false
    (Topology.alive partial.Faults.topo 7);
  Alcotest.(check (list int)) "cut link still dead" faults.Faults.links
    partial.Faults.faults.Faults.links;
  (* full revive: the view's topo is the base itself *)
  let full =
    get (Faults.revive ~procs:partial.Faults.faults.Faults.procs
           ~links:partial.Faults.faults.Faults.links partial)
  in
  Alcotest.(check bool) "no faults left" true (Faults.is_empty full.Faults.faults);
  Alcotest.(check bool) "topo is the base" true (full.Faults.topo == base);
  (* errors are named *)
  expect_error "revive an alive processor" (fun e -> contains e "not dead")
    (Faults.revive ~procs:[ 0 ] view);
  expect_error "revive an alive link" (fun e -> contains e "not dead")
    (Faults.revive ~links:[ 31 ] view)

(* degrade ∘ revive round-trips the link table for arbitrary fault
   sets: every surviving link of the re-revived view carries the same
   base id and endpoints as before the round trip *)
let prop_revive_roundtrip =
  QCheck.Test.make ~name:"degrade ∘ revive round-trips the link table" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prelude.Rng.create seed in
      let base =
        topo_of
          (match seed mod 3 with
          | 0 -> "hypercube:4"
          | 1 -> "torus:4x4"
          | _ -> "mesh:3x5")
      in
      let nprocs = Topology.node_count base in
      let nlinks = Topology.link_count base in
      match
        Faults.random rng
          ~procs:(Prelude.Rng.int rng (min 3 (nprocs - 1)))
          ~links:(Prelude.Rng.int rng (min 4 nlinks))
          base
      with
      | Error e -> QCheck.Test.fail_reportf "random faults: %s" e
      | Ok faults -> begin
        match Faults.degrade base faults with
        | Error _ -> true (* disconnecting draw: nothing to round-trip *)
        | Ok view -> begin
          match
            Faults.revive ~procs:faults.Faults.procs ~links:faults.Faults.links
              view
          with
          | Error e -> QCheck.Test.fail_reportf "full revive refused: %s" e
          | Ok revived ->
            if not (Faults.is_empty revived.Faults.faults) then
              QCheck.Test.fail_reportf "faults survive a full revive";
            if Topology.link_count revived.Faults.topo <> nlinks then
              QCheck.Test.fail_reportf "link count %d <> base %d"
                (Topology.link_count revived.Faults.topo)
                nlinks;
            (* every base link is its own image again *)
            Array.iteri
              (fun i b ->
                if i <> b then
                  QCheck.Test.fail_reportf "link %d maps to base %d after revive" i b)
              revived.Faults.link_to_base;
            (* and a second degrade with the same faults reproduces the
               original view's translation table exactly *)
            (match Faults.degrade revived.Faults.topo faults with
            | Error e -> QCheck.Test.fail_reportf "re-degrade refused: %s" e
            | Ok again ->
              if again.Faults.link_to_base <> view.Faults.link_to_base then
                QCheck.Test.fail_reportf "re-degrade shuffled link ids");
            true
        end
      end)

let () =
  Alcotest.run "faults"
    [
      ( "degrade",
        [
          Alcotest.test_case "structure" `Quick test_degrade_structure;
          Alcotest.test_case "validation" `Quick test_fault_validation;
          Alcotest.test_case "partitions" `Quick test_partition_errors;
          Alcotest.test_case "revive" `Quick test_revive;
          QCheck_alcotest.to_alcotest prop_revive_roundtrip;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "map on degraded" `Quick test_map_on_degraded;
          Alcotest.test_case "baselines avoid dead procs" `Quick test_baselines_on_degraded;
          Alcotest.test_case "incremental and routes" `Quick test_incremental_and_routes_degraded;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "repair vs remap" `Quick test_repair_vs_remap;
          Alcotest.test_case "mid-trace fault event" `Quick test_netsim_fault_event;
        ] );
    ]
