(* The routing tier: full MM-Route vs the traffic-aggregated coarse
   router.

   Coarse routing answers for the same contract as MM-Route — every
   cross-processor message carries a complete shortest route between
   its endpoints' processors, over alive links only, deterministically —
   it just computes one route per (src_proc, dst_proc) demand instead
   of one per message.  These tests pin that contract down, plus the
   jobs-width determinism of the parallel phase fan-out and the
   stride-sampling helper the candidate cap rides on. *)

open Oregami
module Route = Mapper.Route
module Budget = Mapper.Budget
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache

let topo s = Topology.make (Result.get_ok (Topology.parse s))

(* deterministic placement for a bare task graph: balanced blocks over
   the given processors *)
let block_placement tg procs =
  let n = tg.Taskgraph.n in
  let nprocs = Array.length procs in
  Array.init n (fun t -> procs.(t * nprocs / n))

let alive_array t = Array.of_list (Topology.alive_procs t)

let instances =
  [
    (Synth.Rmat, 600, 2, "torus:8x8"); (Synth.Grid, 900, 1, "mesh:6x6");
    (Synth.Tree, 500, 1, "hypercube:4");
  ]

(* --- sample_evenly ------------------------------------------------- *)

let test_sample_evenly () =
  let mk n = List.init n (fun i -> { Routes.nodes = [ i ]; links = [] }) in
  Alcotest.(check int) "want 0 is empty" 0
    (List.length (Routes.sample_evenly ~want:0 (mk 5)));
  Alcotest.(check bool) "want >= n is identity" true
    (Routes.sample_evenly ~want:9 (mk 5) = mk 5);
  for n = 1 to 30 do
    for want = 1 to n do
      let sampled = Routes.sample_evenly ~want (mk n) in
      Alcotest.(check int)
        (Printf.sprintf "n=%d want=%d keeps exactly want" n want)
        want (List.length sampled);
      (match sampled with
      | { Routes.nodes = [ 0 ]; _ } :: _ -> ()
      | _ -> Alcotest.failf "n=%d want=%d dropped the first route" n want);
      (* a subsequence: indices strictly increase *)
      let ids = List.map (fun r -> List.hd r.Routes.nodes) sampled in
      ignore
        (List.fold_left
           (fun prev i ->
             if i <= prev then
               Alcotest.failf "n=%d want=%d not strictly increasing" n want;
             i)
           (-1) ids)
    done
  done

(* --- full routes over alive links ---------------------------------- *)

let check_routes_complete t proc_of_task routings tg =
  List.iter2
    (fun (cp : Taskgraph.comm_phase) pr ->
      Alcotest.(check string) "phase name" cp.Taskgraph.cp_name pr.Mapping.pr_phase;
      List.iter
        (fun re ->
          let pu = proc_of_task.(re.Mapping.re_src)
          and pv = proc_of_task.(re.Mapping.re_dst) in
          let r = re.Mapping.re_route in
          if pu = pv then
            Alcotest.(check bool) "co-located message has no links" true
              (r.Routes.links = [])
          else begin
            (match r.Routes.nodes with
            | first :: _ ->
              Alcotest.(check int) "route starts at the sender's proc" pu first
            | [] -> Alcotest.failf "message %d->%d left unrouted" re.Mapping.re_src re.Mapping.re_dst);
            Alcotest.(check int) "route ends at the receiver's proc" pv
              (List.nth r.Routes.nodes (List.length r.Routes.nodes - 1));
            Alcotest.(check int) "route is a shortest route"
              (Distcache.hop (Distcache.hops t) pu pv)
              (List.length r.Routes.links);
            (* the link ids must be exactly the path's links on this
               (possibly degraded) topology: a degraded view carries
               only surviving links, so matching here proves the route
               crosses alive links only *)
            Alcotest.(check (list int)) "links match the node path on alive links"
              (Topology.links_of_path t r.Routes.nodes)
              r.Routes.links
          end)
        pr.Mapping.pr_edges)
    tg.Taskgraph.comm_phases routings

let test_coarse_routes_complete () =
  List.iter
    (fun (family, n, seed, topo_s) ->
      let tg = Synth.generate family ~n ~seed in
      let t = topo topo_s in
      let proc_of_task = block_placement tg (alive_array t) in
      let routings, _ = Route.coarse_route tg t ~proc_of_task in
      check_routes_complete t proc_of_task routings tg)
    instances

let test_coarse_routes_complete_degraded () =
  (* kill processors and links; the surviving torus stays connected and
     every routed message must avoid the dead links *)
  let base = topo "torus:8x8" in
  let faults = Result.get_ok (Faults.make ~procs:[ 9; 27 ] ~links:[ 3; 40 ] base) in
  let view = Result.get_ok (Faults.degrade base faults) in
  let t = view.Faults.topo in
  let tg = Synth.generate Synth.Rmat ~n:700 ~seed:5 in
  let proc_of_task = block_placement tg (alive_array t) in
  let routings, _ = Route.coarse_route tg t ~proc_of_task in
  check_routes_complete t proc_of_task routings tg

(* --- agreement with full MM-Route ---------------------------------- *)

let test_endpoints_agree_with_mm_route () =
  List.iter
    (fun (family, n, seed, topo_s) ->
      let tg = Synth.generate family ~n ~seed in
      let t = topo topo_s in
      let proc_of_task = block_placement tg (alive_array t) in
      let coarse, _ = Route.coarse_route tg t ~proc_of_task in
      let full, _ = Route.mm_route tg t ~proc_of_task in
      let skeleton routings =
        List.map
          (fun pr ->
            ( pr.Mapping.pr_phase,
              List.map
                (fun re ->
                  let ends = function
                    | [] -> None
                    | first :: _ as nodes ->
                      Some (first, List.nth nodes (List.length nodes - 1))
                  in
                  ( re.Mapping.re_src, re.Mapping.re_dst, re.Mapping.re_volume,
                    ends re.Mapping.re_route.Routes.nodes,
                    List.length re.Mapping.re_route.Routes.links ))
                pr.Mapping.pr_edges ))
          routings
      in
      (* same messages in the same order, same route endpoints, same
         (shortest) hop counts — only the link choices may differ *)
      Alcotest.(check bool) "per-pair route endpoints agree" true
        (skeleton coarse = skeleton full))
    instances

(* --- determinism across jobs widths -------------------------------- *)

let test_deterministic_across_jobs () =
  (* a multi-phase workload so the parallel fan-out actually engages *)
  let compiled = Workloads.compile_exn (Workloads.nbody ~n:24 ~s:3) in
  let tg = compiled.Larcs.Compile.graph in
  let t = topo "hypercube:4" in
  let proc_of_task = block_placement tg (alive_array t) in
  let r1, s1 = Route.coarse_route ~jobs:1 tg t ~proc_of_task in
  let r4, s4 = Route.coarse_route ~jobs:4 tg t ~proc_of_task in
  let r7, _ = Route.coarse_route ~jobs:7 tg t ~proc_of_task in
  Alcotest.(check bool) "jobs=4 routes identical to jobs=1" true (r1 = r4);
  Alcotest.(check bool) "jobs=7 routes identical to jobs=1" true (r1 = r7);
  Alcotest.(check bool) "stats identical too" true (s1 = s4);
  Alcotest.(check bool) "several phases routed" true
    (List.length s1.Route.co_phases > 1)

let test_repeated_runs_identical () =
  let tg = Synth.generate Synth.Rmat ~n:400 ~seed:9 in
  let t = topo "torus:4x8" in
  let proc_of_task = block_placement tg (alive_array t) in
  let a, _ = Route.coarse_route tg t ~proc_of_task in
  let b, _ = Route.coarse_route tg t ~proc_of_task in
  Alcotest.(check bool) "same inputs, same routes" true (a = b)

(* --- budget -------------------------------------------------------- *)

let test_budget_still_routes_fully () =
  let tg = Synth.generate Synth.Rmat ~n:500 ~seed:3 in
  let t = topo "torus:8x8" in
  let proc_of_task = block_placement tg (alive_array t) in
  let budget = Budget.create ~fuel:50 () in
  let routings, _ = Route.coarse_route ~budget tg t ~proc_of_task in
  (* the meter tripped, was recorded by name, and yet every reachable
     message still carries a complete route *)
  Alcotest.(check bool) "tiny fuel budget tripped" true (Budget.exhausted budget);
  Alcotest.(check bool) "truncation recorded by name" true
    (List.mem "coarse-route" (Budget.truncations budget));
  check_routes_complete t proc_of_task routings tg

let () =
  Alcotest.run "route"
    [
      ( "sampling",
        [ Alcotest.test_case "sample_evenly" `Quick test_sample_evenly ] );
      ( "coarse",
        [
          Alcotest.test_case "routes complete" `Quick test_coarse_routes_complete;
          Alcotest.test_case "routes complete on degraded machine" `Quick
            test_coarse_routes_complete_degraded;
          Alcotest.test_case "endpoints agree with mm-route" `Quick
            test_endpoints_agree_with_mm_route;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical across jobs widths" `Quick
            test_deterministic_across_jobs;
          Alcotest.test_case "identical across runs" `Quick
            test_repeated_runs_identical;
        ] );
      ( "budget",
        [
          Alcotest.test_case "tripped budget still routes fully" `Quick
            test_budget_still_routes_fully;
        ] );
    ]
