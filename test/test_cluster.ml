(* Online cluster lifecycle: lease accounting, chaos healing, bounded
   admission, and the combined constraints-plus-faults repair property
   (chaos-driven healing never places on dead processors, never
   violates pins/forbids/requires, and always yields a validated
   routed mapping or a named refusal). *)

open Oregami

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let topo s = get (Topology.of_string s)

let arrive ?procs ?(constraints = Mapper.Constraints.none) name program =
  Cluster.Arrive
    {
      Cluster.ar_name = name;
      ar_program = program;
      ar_procs = procs;
      ar_bindings = [];
      ar_constraints = constraints;
    }

(* step + invariant check, failing with the cluster's own diagnosis *)
let checked_step t ev =
  Cluster.step t ev;
  match Cluster.invariants t with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "invariants after %S: %s" (Cluster.describe_event ev) e

let test_lifecycle () =
  let t = get (Cluster.create (topo "torus:4x4")) in
  Alcotest.(check int) "all free" 16 (List.length (Cluster.free_procs t));
  checked_step t (arrive ~procs:4 "a" "synth:grid:12:1");
  checked_step t (arrive ~procs:4 "b" "synth:ring:8:1");
  Alcotest.(check int) "8 leased" 8 (List.length (Cluster.leased_procs t));
  Alcotest.(check (float 1e-9)) "utilization" 0.5 (Cluster.utilization t);
  checked_step t (Cluster.Depart "a");
  Alcotest.(check int) "lease reclaimed" 4 (List.length (Cluster.leased_procs t));
  checked_step t (Cluster.Depart "a");
  (* unknown departures are logged, never fatal *)
  checked_step t (Cluster.Depart "nobody");
  let r = Cluster.finish t in
  Alcotest.(check int) "admitted" 2 r.Cluster.rp_admitted;
  Alcotest.(check int) "completed" 1 r.Cluster.rp_completed;
  Alcotest.(check (list string)) "b still running" [ "b" ] r.Cluster.rp_running;
  Alcotest.(check int) "one sample per event" r.Cluster.rp_events
    (List.length r.Cluster.rp_samples)

let test_refusals_are_named () =
  let t = get (Cluster.create (topo "mesh:2x2")) in
  checked_step t (arrive "dup" "synth:grid:8:1");
  checked_step t (arrive "dup" "synth:grid:8:1");
  checked_step t (arrive "nosuch" "no-such-program");
  checked_step t (arrive ~procs:9 "huge" "synth:grid:8:1");
  let r = Cluster.finish t in
  let reason name =
    try List.assoc name r.Cluster.rp_refused
    with Not_found -> Alcotest.failf "%s not refused" name
  in
  Alcotest.(check bool) "duplicate named" true (contains (reason "dup") "duplicate");
  Alcotest.(check bool) "missing program named" true
    (contains (reason "nosuch") "no-such-program");
  Alcotest.(check bool) "oversize named" true (contains (reason "huge") "machine has 4")

let test_queue_and_retry () =
  (* a 2x2 machine: one job takes everything, the next waits its turn *)
  let config = { Cluster.default_config with Cluster.cf_queue_bound = 1 } in
  let t = get (Cluster.create ~config (topo "mesh:2x2")) in
  checked_step t (arrive ~procs:4 "hog" "synth:grid:8:1");
  checked_step t (arrive ~procs:4 "waiter" "synth:ring:8:2");
  Alcotest.(check int) "waiter queued" 1
    (let r = List.length (Cluster.free_procs t) in
     Alcotest.(check int) "no free procs" 0 r;
     1);
  (* the queue is full now: a third arrival is shed by name *)
  checked_step t (arrive ~procs:4 "excess" "synth:tree:7:1");
  checked_step t (Cluster.Depart "hog");
  (* enough ticks for the waiter's backoff to expire *)
  checked_step t (Cluster.Depart "nobody");
  checked_step t (Cluster.Depart "nobody");
  let r = Cluster.finish t in
  Alcotest.(check (list string)) "excess shed" [ "excess" ] r.Cluster.rp_shed;
  Alcotest.(check bool) "waiter eventually ran" true
    (List.mem "waiter" r.Cluster.rp_running);
  Alcotest.(check (list (pair string string))) "nothing refused" []
    r.Cluster.rp_refused

let test_chaos_heals () =
  let t = get (Cluster.create (topo "torus:4x4")) in
  checked_step t (arrive ~procs:4 "job" "synth:grid:16:1");
  let l = List.sort compare (Cluster.leased_procs t) in
  let victim = List.hd l in
  checked_step t (Cluster.Kill { procs = [ victim ]; links = [] });
  (* the lease no longer holds the dead processor, and the job still runs *)
  Alcotest.(check bool) "victim not leased" false
    (List.mem victim (Cluster.leased_procs t));
  checked_step t (Cluster.Revive { procs = [ victim ]; links = [] });
  Alcotest.(check bool) "victim free after revive" true
    (List.mem victim (Cluster.free_procs t));
  let r = Cluster.finish t in
  Alcotest.(check (list string)) "job survived" [ "job" ] r.Cluster.rp_running;
  Alcotest.(check int) "chaos applied twice" 2 r.Cluster.rp_chaos_applied;
  Alcotest.(check bool) "healed by repair or remap" true
    (r.Cluster.rp_repairs + r.Cluster.rp_remaps >= 1)

let test_chaos_refused () =
  let t = get (Cluster.create (topo "ring:4")) in
  (* killing 0 and 2 splits a 4-ring: must be refused by name *)
  checked_step t (Cluster.Kill { procs = [ 0; 2 ]; links = [] });
  Alcotest.(check int) "all four still alive" 4
    (List.length (Cluster.free_procs t));
  let r = Cluster.finish t in
  Alcotest.(check int) "chaos refused" 1 r.Cluster.rp_chaos_refused;
  Alcotest.(check bool) "refusal logged with partitions" true
    (List.exists (fun l -> contains l "chaos refused") r.Cluster.rp_log)

let test_parsers () =
  let chaos = get (Cluster.parse_chaos "3:kill-procs=1,2;10:revive-procs=1") in
  Alcotest.(check int) "two chaos events" 2 (List.length chaos);
  (match chaos with
  | [ (3, Cluster.Kill { procs = [ 1; 2 ]; links = [] });
      (10, Cluster.Revive { procs = [ 1 ]; links = [] }) ] -> ()
  | _ -> Alcotest.fail "chaos parse shape");
  (match Cluster.parse_chaos "oops" with
  | Error e -> Alcotest.(check bool) "bad chaos named" true (contains e "oops")
  | Ok _ -> Alcotest.fail "bad chaos accepted");
  (match Cluster.parse_trace_line 7 "arrive j synth:grid:9:1 procs=2 pin=0:1" with
  | Ok (Some (Cluster.Arrive a)) ->
    Alcotest.(check (option int)) "procs" (Some 2) a.Cluster.ar_procs;
    Alcotest.(check (list (pair int int))) "pin" [ (0, 1) ]
      a.Cluster.ar_constraints.Mapper.Constraints.pins
  | Ok _ | Error _ -> Alcotest.fail "arrive parse");
  (match Cluster.parse_trace_line 7 "launch j" with
  | Error e -> Alcotest.(check bool) "line number" true (contains e "line 7")
  | Ok _ -> Alcotest.fail "bad verb accepted");
  (match Cluster.parse_trace_line 1 "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not skipped")

let test_run_with_chaos_schedule () =
  let machine = topo "torus:4x4" in
  let events = Cluster.synth_trace ~events:40 ~seed:11 machine in
  let chaos = get (Cluster.parse_chaos "8:kill-procs=5;20:revive-procs=5") in
  let r = get (Cluster.run ~chaos machine events) in
  Alcotest.(check int) "trace plus chaos events" 42 r.Cluster.rp_events;
  Alcotest.(check int) "both chaos events landed" 2 r.Cluster.rp_chaos_applied;
  (* determinism: the same seed and schedule reproduce the same log *)
  let r2 = get (Cluster.run ~chaos machine events) in
  Alcotest.(check (list string)) "deterministic log" r.Cluster.rp_log r2.Cluster.rp_log

(* the combined property: a chaos-battered multi-tenant machine under
   placement constraints never violates them — every lease holds a
   validated routed mapping on alive in-region processors respecting
   pins and forbids, and every non-admission is a named refusal *)
let prop_chaos_repair_respects_constraints =
  QCheck.Test.make ~name:"chaos healing respects constraints" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prelude.Rng.create seed in
      let machine = topo "torus:4x4" in
      let nprocs = Topology.node_count machine in
      let t =
        match Cluster.create machine with
        | Ok t -> t
        | Error e -> QCheck.Test.fail_reportf "create: %s" e
      in
      (* jobs with real constraints: a pin anchoring task 0 and a
         forbid keeping task 1 off a (different) processor *)
      let specs = Hashtbl.create 8 in
      let mk_arrival i =
        let name = Printf.sprintf "job%d" i in
        let pin_proc = Prelude.Rng.int rng nprocs in
        let forbid_proc = (pin_proc + 1 + Prelude.Rng.int rng (nprocs - 1)) mod nprocs in
        let spec =
          {
            Mapper.Constraints.none with
            Mapper.Constraints.pins = [ (0, pin_proc) ];
            forbids = [ (1, forbid_proc) ];
          }
        in
        Hashtbl.replace specs name spec;
        arrive ~procs:(2 + Prelude.Rng.int rng 4) ~constraints:spec name
          (Printf.sprintf "synth:%s:%d:%d"
             [| "grid"; "ring"; "tree" |].(Prelude.Rng.int rng 3)
             (6 + Prelude.Rng.int rng 15)
             (1 + Prelude.Rng.int rng 99))
      in
      let job = ref 0 and live = ref [] in
      for _ = 1 to 30 do
        let ev =
          match Prelude.Rng.int rng 10 with
          | 0 | 1 ->
            (* chaos: kill or revive a random processor *)
            let p = Prelude.Rng.int rng nprocs in
            if Prelude.Rng.bool rng then Cluster.Kill { procs = [ p ]; links = [] }
            else Cluster.Revive { procs = [ p ]; links = [] }
          | 2 | 3 when !live <> [] ->
            let name = Prelude.Rng.pick rng (Array.of_list !live) in
            live := List.filter (fun n -> n <> name) !live;
            Cluster.Depart name
          | _ ->
            incr job;
            live := Printf.sprintf "job%d" !job :: !live;
            mk_arrival !job
        in
        Cluster.step t ev;
        (match Cluster.invariants t with
        | Ok () -> ()
        | Error e ->
          QCheck.Test.fail_reportf "invariants after %S: %s"
            (Cluster.describe_event ev) e);
        (* every lease honours its own constraint spec on the live view *)
        List.iter
          (fun name ->
            match Cluster.lease_assignment t name with
            | None -> () (* queued, refused or departed: fine *)
            | Some (tg, topo_now, assignment) ->
              let spec = Hashtbl.find specs name in
              Array.iteri
                (fun task p ->
                  if not (Topology.alive topo_now p) then
                    QCheck.Test.fail_reportf "%s task %d on dead proc %d" name
                      task p;
                  List.iter
                    (fun (tk, pr) ->
                      if task = tk && p <> pr then
                        QCheck.Test.fail_reportf "%s pin %d:%d violated (on %d)"
                          name tk pr p)
                    spec.Mapper.Constraints.pins;
                  List.iter
                    (fun (tk, pr) ->
                      if task = tk && p = pr then
                        QCheck.Test.fail_reportf "%s forbid %d:%d violated" name
                          tk pr)
                    spec.Mapper.Constraints.forbids)
                assignment;
              ignore tg)
          !live
      done;
      (* wrap-up accounts for every job by name *)
      let r = Cluster.finish t in
      let accounted =
        r.Cluster.rp_admitted + r.Cluster.rp_cancelled
        + List.length r.Cluster.rp_refused
        + List.length r.Cluster.rp_shed
      in
      if accounted < !job then
        QCheck.Test.fail_reportf "%d jobs, only %d accounted for" !job accounted;
      true)

let () =
  Alcotest.run "cluster"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "admit and depart" `Quick test_lifecycle;
          Alcotest.test_case "refusals are named" `Quick test_refusals_are_named;
          Alcotest.test_case "queue, retry, shed" `Quick test_queue_and_retry;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill heals, revive frees" `Quick test_chaos_heals;
          Alcotest.test_case "disconnecting kill refused" `Quick test_chaos_refused;
          Alcotest.test_case "run with schedule" `Quick test_run_with_chaos_schedule;
          QCheck_alcotest.to_alcotest prop_chaos_repair_respects_constraints;
        ] );
      ( "parsing",
        [ Alcotest.test_case "chaos and trace grammar" `Quick test_parsers ] );
    ]
