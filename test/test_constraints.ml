(* Heterogeneous capability classes and placement constraints.

   The contract under test: a single Constraints.spec (pins, forbids,
   required classes, skip-placement classes) threads through every
   mapping layer — each registry strategy either produces a
   DRC-clean mapping or declines with a named reason, the empty spec
   is bit-identical to the historical unconstrained pipeline, and the
   fault-repair path never moves a pinned task or evacuates onto a
   forbidden/incompatible survivor. *)

open Oregami
module Constraints = Mapper.Constraints

let topo s = Result.get_ok (Topology.of_string s)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let tg_of name =
  let spec = List.find (fun s -> s.Workloads.w_name = name) (Workloads.all ()) in
  (Workloads.compile_exn spec).Larcs.Compile.graph

let map_with ?(spec = Constraints.none) ?(fallback = false) ?faults tg t =
  let options =
    { Driver.default_options with Driver.constraints = spec; Driver.fallback }
  in
  Driver.map_taskgraph ~options ?faults tg t

(* --- topology capability classes ---------------------------------- *)

let test_class_spec () =
  let t = topo "torus:4x4:classes=mem@0-3/io@12,15" in
  Alcotest.(check string) "tagged" "mem" (Topology.node_class t 0);
  Alcotest.(check string) "second group" "io" (Topology.node_class t 15);
  Alcotest.(check string) "default" Topology.default_class (Topology.node_class t 5);
  Alcotest.(check (list string)) "classes" [ "compute"; "io"; "mem" ]
    (Topology.class_names t);
  (* degradation keeps the tags *)
  let faults = Result.get_ok (Faults.make ~procs:[ 1 ] ~links:[] t) in
  let view = Result.get_ok (Faults.degrade t faults) in
  Alcotest.(check string) "degrade keeps classes" "mem"
    (Topology.node_class view.Faults.topo 0);
  (* malformed suffixes name the offending field *)
  let bad s sub =
    match Topology.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
      if not (contains ~sub e) then Alcotest.failf "error %S misses %S" e sub
  in
  bad "torus:4x4:classes=mem@99" "out of range";
  bad "torus:4x4:classes=mem" "bad class group";
  bad "torus:4x4:classes=m!m@1" "bad class name";
  bad "torus:4x4:classes=mem@5-2" "empty processor range"

(* --- compile-time spec validation --------------------------------- *)

let test_compile_errors () =
  let tg = tg_of "jacobi" in
  let t = topo "torus:4x4:classes=mem@0-3" in
  let check spec sub =
    let c = Constraints.compile spec tg t in
    match Constraints.errors c with
    | [] -> Alcotest.failf "spec accepted, wanted error containing %S" sub
    | e :: _ ->
      if not (contains ~sub e) then Alcotest.failf "error %S misses %S" e sub
  in
  check { Constraints.none with Constraints.pins = [ (999, 0) ] } "out of range";
  check { Constraints.none with Constraints.pins = [ (0, 99) ] } "out of range";
  check
    { Constraints.none with Constraints.pins = [ (0, 1); (0, 2) ] }
    "pinned to both";
  check
    { Constraints.none with Constraints.skip_classes = [ "gpu" ] }
    "not present on";
  check
    { Constraints.none with Constraints.requires = [ (0, "gpu") ] }
    "no alive placeable processor";
  check
    {
      Constraints.none with
      Constraints.pins = [ (0, 5) ];
      Constraints.requires = [ (0, "mem") ];
    }
    "class"

(* --- every strategy: satisfy or decline --------------------------- *)

let strategies_satisfy_or_decline tg t spec =
  let cons = Constraints.compile spec tg t in
  Alcotest.(check (list string)) "spec compiles" [] (Constraints.errors cons);
  List.iter
    (fun (s : Strategy.t) ->
      let options =
        {
          Driver.default_options with
          Driver.constraints = spec;
          Driver.only = [ s.Strategy.name ];
        }
      in
      match Driver.map_taskgraph ~options tg t with
      | Error _ -> ()
      (* declining by name is the allowed alternative; the aggregate
         error always carries the reasons *)
      | Ok m -> begin
        match Constraints.drc cons (Mapping.assignment m) with
        | [] -> ()
        | v :: _ ->
          Alcotest.failf "strategy %s violated constraints: %s" s.Strategy.name
            (Constraints.violation_to_string v)
      end)
    (Strategy.registry ())

let test_all_strategies_respect () =
  let t = topo "torus:4x4:classes=mem@0-3" in
  let spec =
    {
      Constraints.pins = [ (0, 1) ];
      forbids = [ (2, 5); (3, 5) ];
      requires = [ (1, "mem") ];
      skip_classes = [];
    }
  in
  strategies_satisfy_or_decline (tg_of "jacobi") t spec;
  strategies_satisfy_or_decline (tg_of "fft") t spec

let test_skip_class () =
  let t = topo "torus:4x4:classes=io@12-15" in
  let tg = tg_of "fft" in
  let spec = { Constraints.none with Constraints.skip_classes = [ "io" ] } in
  match map_with ~spec tg t with
  | Error e -> Alcotest.failf "no mapping: %s" e
  | Ok m ->
    Array.iter
      (fun p ->
        if p >= 12 then Alcotest.failf "task placed on skip-class processor %d" p)
      (Mapping.assignment m)

(* --- the empty spec is bit-identical ------------------------------ *)

let test_unconstrained_identity () =
  List.iter
    (fun name ->
      let tg = tg_of name in
      let t = topo "torus:4x4" in
      let base = Result.get_ok (Driver.map_taskgraph tg t) in
      let cons = Result.get_ok (map_with ~spec:Constraints.none tg t) in
      Alcotest.(check string) "same strategy" base.Mapping.strategy
        cons.Mapping.strategy;
      Alcotest.(check (array int)) "same assignment" (Mapping.assignment base)
        (Mapping.assignment cons))
    [ "jacobi"; "fft"; "divconq" ]

(* --- repair under constraints ------------------------------------- *)

let test_repair_refuses_dead_pin () =
  let tg = tg_of "jacobi" in
  let t = topo "torus:4x4" in
  let spec = { Constraints.none with Constraints.pins = [ (0, 3) ] } in
  let m = Result.get_ok (map_with ~spec tg t) in
  let faults = Result.get_ok (Faults.make ~procs:[ 3 ] ~links:[] t) in
  let view = Result.get_ok (Faults.degrade t faults) in
  match Repair.repair ~constraints:spec m view.Faults.topo with
  | Ok _ -> Alcotest.fail "repair moved a pinned task off its dead processor"
  | Error e ->
    if not (contains ~sub:"pin" e) then
      Alcotest.failf "refusal does not name the pin: %s" e

(* property: repair never moves a surviving pinned task and never
   evacuates onto a forbidden or wrong-class survivor *)
let prop_repair_respects_constraints =
  QCheck.Test.make ~name:"repair respects pins/forbids/classes" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prelude.Rng.create seed in
      let tg = tg_of (if seed mod 2 = 0 then "jacobi" else "fft") in
      let n = tg.Taskgraph.n in
      let t = topo "torus:4x4:classes=mem@0-3" in
      let nprocs = Topology.node_count t in
      (* one pinned task (never on the processor we kill), a couple of
         forbids, one class requirement *)
      let dead = 4 + Prelude.Rng.int rng (nprocs - 4) in
      let pin_proc =
        let p = ref (Prelude.Rng.int rng nprocs) in
        while !p = dead do p := Prelude.Rng.int rng nprocs done;
        !p
      in
      let pin_task = Prelude.Rng.int rng n in
      let forbid_task = Prelude.Rng.int rng n in
      let req_task =
        let tk = ref (Prelude.Rng.int rng n) in
        while !tk = pin_task || !tk = forbid_task do
          tk := Prelude.Rng.int rng n
        done;
        !tk
      in
      let spec =
        {
          Constraints.pins = [ (pin_task, pin_proc) ];
          forbids =
            (if forbid_task = pin_task then []
             else [ (forbid_task, (dead + 1) mod nprocs) ]);
          requires = [ (req_task, "mem") ];
          skip_classes = [];
        }
      in
      match map_with ~spec ~fallback:true tg t with
      | Error e -> QCheck.Test.fail_reportf "base mapping failed: %s" e
      | Ok m -> begin
        let faults = Result.get_ok (Faults.make ~procs:[ dead ] ~links:[] t) in
        let view = Result.get_ok (Faults.degrade t faults) in
        match Repair.repair ~constraints:spec m view.Faults.topo with
        | Error e -> QCheck.Test.fail_reportf "repair failed: %s" e
        | Ok r ->
          let a = Mapping.assignment r.Repair.rp_mapping in
          if a.(pin_task) <> pin_proc then
            QCheck.Test.fail_reportf "pinned task %d moved to %d" pin_task
              a.(pin_task);
          List.iter
            (fun (tk, p) ->
              if a.(tk) = p then
                QCheck.Test.fail_reportf "task %d evacuated onto forbidden %d" tk p)
            spec.Constraints.forbids;
          if Topology.node_class t a.(req_task) <> "mem" then
            QCheck.Test.fail_reportf
              "task %d requiring mem landed on %d (class %s)" req_task
              a.(req_task)
              (Topology.node_class t a.(req_task));
          (* and no task may sit on the dead processor *)
          Array.iteri
            (fun tk p ->
              if p = dead then
                QCheck.Test.fail_reportf "task %d left on dead processor" tk)
            a;
          true
      end)

let () =
  Alcotest.run "constraints"
    [
      ( "topology",
        [ Alcotest.test_case "class specs parse and degrade" `Quick test_class_spec ] );
      ( "compile",
        [ Alcotest.test_case "malformed specs name the rule" `Quick
            test_compile_errors ] );
      ( "strategies",
        [
          Alcotest.test_case "satisfy or decline, every registry entry" `Quick
            test_all_strategies_respect;
          Alcotest.test_case "skip-placement classes" `Quick test_skip_class;
          Alcotest.test_case "empty spec is bit-identical" `Quick
            test_unconstrained_identity;
        ] );
      ( "repair",
        [
          Alcotest.test_case "refuses a dead pin" `Quick test_repair_refuses_dead_pin;
          QCheck_alcotest.to_alcotest prop_repair_respects_constraints;
        ] );
    ]
