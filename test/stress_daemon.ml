(* Daemon soak (`dune build @stress`).

   Four scenarios against real Unix sockets:

   1. SIGTERM drain: a forked daemon killed with provably-admitted
      jobs inflight must answer every one of them, exit 0, and remove
      its socket file.
   2. Soak: 8 concurrent clients each stream 40 mixed requests and
      must get exactly one answer per request, every answer matching
      what the batch service says for the same line (elapsed column
      masked; answers re-sorted by id since they arrive in completion
      order).
   3. Overload: a burst of fixed-duration [sleep] jobs against a tiny
      queue must shed by name, and the p99 latency of the *accepted*
      jobs must stay within 2x the unloaded p99 — shedding is what
      keeps the tail bounded.
   4. Cache bound: traffic over more topologies than the cache bound
      admits must evict rather than grow, proven by the stats verb. *)

open Oregami

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("stress_daemon: " ^ m);
      exit 1)
    fmt

(* --- plumbing ----------------------------------------------------- *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let dial path =
  let rec go n =
    match Daemon.connect (Daemon.Unix_socket path) with
    | fd -> fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0 ->
      Unix.sleepf 0.02;
      go (n - 1)
  in
  let fd = go 250 in
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr (Unix.dup fd);
  }

let say c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let hear c = input_line c.ic

let hangup c =
  close_out_noerr c.oc;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* mask the wall-clock elapsed-ms column (index 7) *)
let mask line =
  String.split_on_char '\t' line
  |> List.mapi (fun i col -> if i = 7 then "*" else col)
  |> String.concat "\t"

let id_of line =
  match String.split_on_char '\t' line with
  | x :: _ -> ( match int_of_string_opt x with Some n -> n | None -> max_int)
  | [] -> max_int

let elapsed_of line =
  match String.split_on_char '\t' line with
  | _ :: _ :: _ :: _ :: _ :: _ :: _ :: e :: _ -> float_of_string e
  | _ -> fail "no elapsed column in %S" line

(* sun_path is ~108 bytes: keep socket paths short and in /tmp *)
let sock_path tag = Printf.sprintf "/tmp/oregd-%s-%d.sock" tag (Unix.getpid ())

let in_process_daemon cfg =
  let lock = Mutex.create () and arrived = Condition.create () in
  let ctl = ref None in
  let code = ref (-1) in
  let th =
    Thread.create
      (fun () ->
        code :=
          Daemon.run ~handle_signals:false
            ~ready:(fun c ->
              Mutex.lock lock;
              ctl := Some c;
              Condition.broadcast arrived;
              Mutex.unlock lock)
            cfg)
      ()
  in
  Mutex.lock lock;
  while !ctl = None do
    Condition.wait arrived lock
  done;
  Mutex.unlock lock;
  fun () ->
    Daemon.shutdown (Option.get !ctl);
    Thread.join th;
    !code

let percentile xs p =
  match xs with
  | [] -> fail "percentile of nothing"
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    a.(max 0 (min (n - 1) (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1)))

(* --- 1: SIGTERM drain in a forked daemon -------------------------- *)

let sigterm_drain () =
  let path = sock_path "term" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> begin
    (* child: a real daemon with real signal handlers *)
    match
      Daemon.run
        { (Daemon.default_config (Daemon.Unix_socket path)) with
          Daemon.d_jobs = 2;
          Daemon.d_queue_bound = 16;
        }
    with
    | code -> Stdlib.exit code
    | exception _ -> Stdlib.exit 99
  end
  | pid ->
    let c = dial path in
    let jobs = 4 in
    for _ = 1 to jobs do
      say c "sleep 300"
    done;
    (* the reader is sequential: once stats answers, all four sleeps
       were admitted — the drain guarantee now covers them *)
    say c "stats";
    let s = hear c in
    if not (contains s "(stats ") then fail "expected a stats line, got %S" s;
    Unix.kill pid Sys.sigterm;
    let answers = ref 0 in
    (try
       while true do
         let line = hear c in
         if not (contains line "\tok\t") then
           fail "drained job answered badly: %S" line;
         incr answers
       done
     with End_of_file -> ());
    hangup c;
    if !answers <> jobs then
      fail "SIGTERM drain answered %d of %d admitted jobs" !answers jobs;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, Unix.WEXITED n -> fail "daemon exited %d after SIGTERM" n
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> fail "daemon died of a signal");
    if Sys.file_exists path then fail "socket file left behind";
    print_endline "stress_daemon: SIGTERM drain answered everything, exit 0"

(* --- 2: concurrent soak against the batch-service oracle ---------- *)

let soak_requests =
  [
    "voting hypercube:2";
    "nbody ring:8 seed=5";
    "nbody torus:4x4 fuel=100";
    "./no-such-file.larcs ring:4";
    "jacobi mesh:4x4 iters=1";
    "voting hypercube:2 deadline-ms=0 retries=0";
    "lonely";
    "nbody ring:8 fuel=1 fuel=2";
  ]

(* what `serve` (jobs=1, cold caches) answers for this stream *)
let oracle lines =
  List.filter_map
    (fun (i, line) ->
      match Service.parse_request ~id:i line with
      | Ok None -> None
      | Ok (Some req) ->
        Some (mask (Service.render Service.Tsv (Service.run_request req)))
      | Error e ->
        Some (mask (Service.render Service.Tsv (Service.malformed ~id:i ~line e))))
    (List.mapi (fun i l -> (i + 1, l)) lines)

let soak () =
  let clients = 8 and rounds = 5 in
  let path = sock_path "soak" in
  let stop =
    in_process_daemon
      { (Daemon.default_config (Daemon.Unix_socket path)) with
        Daemon.d_jobs = 4;
        (* deep queue: nothing may shed, every answer must match *)
        Daemon.d_queue_bound = 4096;
        Daemon.d_max_inflight = 4096;
      }
  in
  let lines = List.concat (List.init rounds (fun _ -> soak_requests)) in
  let want = oracle lines in
  let results = Array.make clients [] in
  let worker k () =
    let c = dial path in
    List.iter (say c) lines;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    let answers = ref [] in
    (try
       while true do
         answers := hear c :: !answers
       done
     with End_of_file -> ());
    hangup c;
    results.(k) <- List.rev_map mask !answers
  in
  let threads = List.init clients (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  Array.iteri
    (fun k answers ->
      let got = List.sort (fun a b -> compare (id_of a) (id_of b)) answers in
      if List.length got <> List.length want then
        fail "client %d: %d answers for %d requests" k (List.length got)
          (List.length want);
      List.iteri
        (fun i (w, g) ->
          if w <> g then
            fail "client %d answer %d diverged from serve\n  want: %s\n  got:  %s"
              k (i + 1) w g)
        (List.combine want got))
    results;
  let code = stop () in
  if code <> 0 then fail "soak daemon drain returned %d" code;
  Printf.printf
    "stress_daemon: %d clients x %d requests, all answers = batch service\n"
    clients (List.length lines)

(* --- 3: overload sheds and the accepted tail stays bounded -------- *)

let overload () =
  let path = sock_path "load" in
  let stop =
    in_process_daemon
      { (Daemon.default_config (Daemon.Unix_socket path)) with
        Daemon.d_jobs = 4;
        Daemon.d_queue_bound = 2;
        Daemon.d_max_inflight = 4096;
      }
  in
  let c = dial path in
  (* unloaded baseline: sequential sleep-50 jobs; latency is the
     server-side elapsed column (admission to answer) *)
  let unloaded =
    List.init 10 (fun _ ->
        say c "sleep 50";
        elapsed_of (hear c))
  in
  let p99_unloaded = percentile unloaded 99.0 in
  (* stagger the four workers so completions spread out, then sustain
     arrivals at ~2x service capacity (4 workers / 50 ms = 80 jobs/s,
     sent at ~160/s): the queue stays saturated so a steady fraction
     sheds, while accepted jobs still measure a bounded tail *)
  for _ = 1 to 4 do
    say c "sleep 50";
    Unix.sleepf 0.012
  done;
  for _ = 1 to 56 do
    say c "sleep 50";
    Unix.sleepf 0.006
  done;
  (try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let accepted = ref [] and shed = ref 0 in
  (try
     while true do
       let line = hear c in
       if contains line "overload: admission queue full" then incr shed
       else if contains line "\tok\t" then accepted := elapsed_of line :: !accepted
       else fail "unexpected overload answer %S" line
     done
   with End_of_file -> ());
  hangup c;
  let code = stop () in
  if code <> 0 then fail "overload daemon drain returned %d" code;
  if !shed = 0 then fail "overload burst shed nothing";
  if List.length !accepted < 10 then
    fail "only %d accepted jobs; burst too small to measure" (List.length !accepted);
  let p99_loaded = percentile !accepted 99.0 in
  if p99_loaded > 2.0 *. p99_unloaded then
    fail "accepted p99 %.1f ms exceeds 2x unloaded p99 %.1f ms" p99_loaded
      p99_unloaded;
  Printf.printf
    "stress_daemon: overload shed %d, accepted %d, p99 %.1f ms vs unloaded %.1f ms\n"
    !shed (List.length !accepted) p99_loaded p99_unloaded

(* --- 4: the artifact caches never exceed their bound -------------- *)

let cache_bound () =
  let path = sock_path "cache" in
  let bound = 4 in
  let stop =
    in_process_daemon
      { (Daemon.default_config (Daemon.Unix_socket path)) with
        Daemon.d_jobs = 2;
        Daemon.d_cache_bound = Some bound;
      }
  in
  let c = dial path in
  (* 9 distinct topologies through a bound of 4, twice over *)
  for _ = 1 to 2 do
    for n = 4 to 12 do
      say c (Printf.sprintf "nbody ring:%d fuel=50 retries=0" n);
      let line = hear c in
      if not (contains line "\tok\t") then fail "mapping failed: %S" line;
      say c "stats";
      let s = hear c in
      (* parse "(topologies (size N)": the bound must hold at every
         observation point, not just at the end *)
      let idx =
        let marker = "(topologies (size " in
        let rec go i =
          if i + String.length marker > String.length s then
            fail "no topology stats in %S" s
          else if String.sub s i (String.length marker) = marker then
            i + String.length marker
          else go (i + 1)
        in
        go 0
      in
      let size =
        let j = String.index_from s idx ')' in
        int_of_string (String.sub s idx (j - idx))
      in
      if size > bound then fail "topology cache grew to %d (bound %d)" size bound
    done
  done;
  (* 18 gets over 9 keys with bound 4: evictions are guaranteed *)
  say c "stats";
  let s = hear c in
  let topo_stats =
    let marker = "(topologies (size " in
    let rec find i =
      if i + String.length marker > String.length s then
        fail "no topology stats in %S" s
      else if String.sub s i (String.length marker) = marker then i
      else find (i + 1)
    in
    let start = find 0 in
    String.sub s start (String.length s - start)
  in
  if contains topo_stats "(evictions 0)" then
    fail "cache bound never evicted: %S" s;
  hangup c;
  let code = stop () in
  if code <> 0 then fail "cache daemon drain returned %d" code;
  print_endline "stress_daemon: cache bound held at every observation"

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* fork first, while this process has spawned no domains *)
  sigterm_drain ();
  soak ();
  overload ();
  cache_bound ();
  print_endline "stress_daemon: all scenarios passed"
