(* Fuzzing the compile → pipeline → metrics chain.

   Two generators: well-formed random LaRCS programs (template-based:
   random 1-D node space, shift/ring/tree communication rules, random
   phase expressions), and byte-level mutations of those programs.
   Well-formed programs must compile and, under a small fuel budget
   with the fallback enabled, must map to a valid mapping without ever
   raising and without burning more than bounded fuel past the cap.
   Mutated programs may fail to compile, but the compiler must return
   [Error] rather than raise, and whenever it accepts the source the
   pipeline contract above must still hold. *)

open Oregami
module Rng = Prelude.Rng
module Budget = Mapper.Budget
module Isolate = Mapper.Isolate

let topo s = Topology.make (Result.get_ok (Topology.parse s))

let topologies =
  [| "hypercube:3"; "mesh:3x3"; "ring:6"; "torus:4x4"; "line:7"; "bintree:2" |]

(* --- generator: well-formed programs ------------------------------ *)

let comm_rule rng n i =
  let d = 1 + Rng.int rng 3 in
  let volume =
    if Rng.int rng 2 = 0 then "" else Printf.sprintf " volume %d" (1 + Rng.int rng 4)
  in
  let body =
    match Rng.int rng 4 with
    | 0 -> Printf.sprintf "t i -> t ((i+%d) mod n)%s;" d volume
    | 1 -> Printf.sprintf "t i -> t (i+%d)%s when i < n-%d;" d volume d
    | 2 -> Printf.sprintf "t i -> t (i-%d)%s when i > %d;" d volume (d - 1)
    | _ -> Printf.sprintf "t i -> t ((i - 1) / 2)%s when i > 0;" volume
  in
  ignore n;
  Printf.sprintf "comphase c%d { %s }" i body

let phase_expr rng comms execs =
  let exec () = List.nth execs (Rng.int rng (List.length execs)) in
  let k = 1 + Rng.int rng 3 in
  match Rng.int rng 3 with
  | 0 -> Printf.sprintf "(%s; %s)^%d" (String.concat " || " comms) (exec ()) k
  | 1 -> Printf.sprintf "(%s; %s)^%d" (String.concat "; " comms) (exec ()) k
  | _ ->
    String.concat "; "
      (List.map (fun c -> Printf.sprintf "%s; %s" c (exec ())) comms)

let generate rng =
  let n = 4 + Rng.int rng 9 in
  let ncomms = 1 + Rng.int rng 3 in
  let nexecs = 1 + Rng.int rng 2 in
  let comms = List.init ncomms (fun i -> Printf.sprintf "c%d" i) in
  let execs = List.init nexecs (fun i -> Printf.sprintf "e%d" i) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "algorithm fuzz(n);\n";
  Buffer.add_string buf "nodetype t : 0 .. n-1;\n";
  List.iteri
    (fun i _ -> Buffer.add_string buf (comm_rule rng n i ^ "\n"))
    comms;
  List.iteri
    (fun i _ ->
      Buffer.add_string buf
        (Printf.sprintf "exphase e%d cost %d;\n" i (1 + Rng.int rng 9)))
    execs;
  Buffer.add_string buf
    (Printf.sprintf "phases %s;\n" (phase_expr rng comms execs));
  (Buffer.contents buf, n)

let mutate rng source =
  let s = Bytes.of_string source in
  let len = Bytes.length s in
  match Rng.int rng 4 with
  | 0 -> Bytes.sub_string s 0 (Rng.int rng len) (* truncate *)
  | 1 ->
    (* delete one char *)
    let i = Rng.int rng len in
    Bytes.sub_string s 0 i ^ Bytes.sub_string s (i + 1) (len - i - 1)
  | 2 ->
    (* insert a structural char *)
    let junk = "(){};->|^." in
    let i = Rng.int rng len in
    Bytes.sub_string s 0 i
    ^ String.make 1 junk.[Rng.int rng (String.length junk)]
    ^ Bytes.sub_string s i (len - i)
  | _ ->
    (* overwrite one char *)
    let i = Rng.int rng len in
    Bytes.set s i 'q';
    Bytes.to_string s

(* --- the contract under test -------------------------------------- *)

let fuel_cap = 200

(* sticky-dead polls still charge their cost while loops unwind, so a
   budgeted run may overshoot the cap by a bounded amount; far past
   that means some loop is ignoring the dead budget *)
let fuel_slack = 20_000

let check_pipeline seed compiled =
  let rng = Rng.create (seed lxor 0x5eed) in
  let t = topo topologies.(Rng.int rng (Array.length topologies)) in
  let options =
    {
      Driver.default_options with
      Driver.fuel = Some fuel_cap;
      Driver.fallback = true;
    }
  in
  match
    Isolate.protect (fun () ->
        let ctx = Ctx.of_compiled ~options compiled t in
        (Driver.run ctx, Budget.fuel_used ctx.Ctx.budget))
  with
  | Error e -> QCheck.Test.fail_reportf "pipeline raised: %s" e
  | Ok (Error e, _) -> QCheck.Test.fail_reportf "no mapping: %s" e
  | Ok (Ok (m, _deg), used) ->
    (match Mapping.validate m with
    | Ok () -> ()
    | Error e -> QCheck.Test.fail_reportf "invalid mapping: %s" e);
    if used > fuel_cap + fuel_slack then
      QCheck.Test.fail_reportf "budget ignored: %d fuel used against cap %d"
        used fuel_cap;
    true

let well_formed =
  QCheck.Test.make ~name:"well-formed programs map validly under budget"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let source, n = generate rng in
      match
        Isolate.protect (fun () ->
            Larcs.Compile.compile_source ~bindings:[ ("n", n) ] source)
      with
      | Error e -> QCheck.Test.fail_reportf "compiler raised on:\n%s\n%s" source e
      | Ok (Error e) ->
        QCheck.Test.fail_reportf "generator produced invalid LaRCS:\n%s\n%s"
          source e
      | Ok (Ok compiled) -> check_pipeline seed compiled)

let mutated =
  QCheck.Test.make ~name:"mutated programs never crash the compiler"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let source, n = generate rng in
      let source = mutate rng source in
      match
        Isolate.protect (fun () ->
            Larcs.Compile.compile_source ~bindings:[ ("n", n) ] source)
      with
      | Error e ->
        QCheck.Test.fail_reportf "compiler raised on mutated input:\n%s\n%s"
          source e
      | Ok (Error _) -> true (* a clean rejection is the expected outcome *)
      | Ok (Ok compiled) -> check_pipeline seed compiled)

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest well_formed;
          QCheck_alcotest.to_alcotest mutated;
        ] );
    ]
