(* Daemon lifecycle tests: an in-process daemon on a temp Unix socket,
   driven through real file descriptors — admission, shedding, quotas,
   client disconnects, the stats verb, and graceful shutdown. *)

module Daemon = Oregami.Daemon
module Service = Oregami.Service

(* --- harness ------------------------------------------------------ *)

(* the daemon blocks in [run] until shut down, so it lives on its own
   systhread; [ready] hands the controller back before the first
   accept, which is the only sound moment to dial in *)
let with_daemon ?(tweak = fun c -> c) f =
  let path = Filename.temp_file "oregd" ".sock" in
  let cfg = tweak (Daemon.default_config (Daemon.Unix_socket path)) in
  let lock = Mutex.create () and arrived = Condition.create () in
  let ctl = ref None in
  let code = ref (-1) in
  let th =
    Thread.create
      (fun () ->
        code :=
          Daemon.run ~handle_signals:false
            ~ready:(fun c ->
              Mutex.lock lock;
              ctl := Some c;
              Condition.broadcast arrived;
              Mutex.unlock lock)
            cfg)
      ()
  in
  Mutex.lock lock;
  while !ctl = None do
    Condition.wait arrived lock
  done;
  Mutex.unlock lock;
  Fun.protect
    ~finally:(fun () ->
      Daemon.shutdown (Option.get !ctl);
      Thread.join th;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path);
  Alcotest.(check int) "graceful drain returns 0" 0 !code

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let dial path =
  let fd = Daemon.connect (Daemon.Unix_socket path) in
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr (Unix.dup fd);
  }

let say c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let hear c = input_line c.ic

let hangup c =
  close_out_noerr c.oc;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let fields line = String.split_on_char '\t' line

(* --- tests -------------------------------------------------------- *)

let test_lifecycle () =
  with_daemon (fun path ->
      let c = dial path in
      say c "ping";
      Alcotest.(check string) "pong" "pong" (hear c);
      say c "voting hypercube:2";
      (match fields (hear c) with
      | id :: program :: topology :: status :: strategy :: _ ->
        Alcotest.(check string) "id" "1" id;
        Alcotest.(check string) "program" "voting" program;
        Alcotest.(check string) "topology" "hypercube:2" topology;
        Alcotest.(check string) "status" "ok" status;
        Alcotest.(check string) "strategy" "group-theoretic" strategy
      | _ -> Alcotest.fail "short answer line");
      say c "quit";
      (match hear c with
      | line -> Alcotest.failf "expected close after quit, got %S" line
      | exception End_of_file -> ());
      hangup c)

let test_answers_match_batch_service () =
  (* the daemon must answer exactly what the batch service answers,
     wall-clock column aside *)
  with_daemon (fun path ->
      let c = dial path in
      let lines =
        [ "voting hypercube:2"; "nbody ring:8 seed=5"; "nbody torus:4x4 fuel=100" ]
      in
      let answers =
        List.mapi
          (fun i line ->
            say c line;
            (i + 1, hear c))
          lines
      in
      hangup c;
      List.iteri
        (fun i line ->
          let req =
            match Service.parse_request ~id:(i + 1) line with
            | Ok (Some r) -> r
            | _ -> Alcotest.failf "unparseable %S" line
          in
          let want = Service.render Service.Tsv (Service.run_request req) in
          let got = List.assoc (i + 1) answers in
          let mask l =
            match fields l with
            | a :: b :: c' :: d :: e :: f :: g :: _elapsed :: rest ->
              String.concat "\t" (a :: b :: c' :: d :: e :: f :: g :: rest)
            | _ -> l
          in
          Alcotest.(check string)
            (Printf.sprintf "request %d identical" (i + 1))
            (mask want) (mask got))
        lines)

let test_queue_full_shedding () =
  with_daemon
    ~tweak:(fun c ->
      { c with Daemon.d_jobs = 1; d_queue_bound = 1; d_max_inflight = 100 })
    (fun path ->
      let c = dial path in
      say c "sleep 400";
      (* wait until the lone worker holds job 1 (stats answers come
         straight from the reader), so the queue state is deterministic
         for the rest of the burst; pickup is near-instant, the sleep
         is long enough that job 1 cannot finish during the poll *)
      let rec settle n =
        if n = 0 then Alcotest.fail "worker never picked the job up";
        say c "stats";
        if not (contains (hear c) "(inflight 1)") then begin
          Unix.sleepf 0.005;
          settle (n - 1)
        end
      in
      settle 40;
      say c "sleep 400";
      (* worker busy + queue slot taken: everything further is shed *)
      let shed_answers =
        List.init 3 (fun _ ->
            say c "sleep 400";
            hear c)
      in
      List.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "named shed: %s" line)
            true
            (contains line "overload: admission queue full (bound 1)"))
        shed_answers;
      (* the two accepted sleeps still complete and answer ok *)
      let a = hear c and b = hear c in
      List.iter
        (fun line ->
          match fields line with
          | _ :: "sleep" :: _ :: status :: _ ->
            Alcotest.(check string) "accepted sleep ok" "ok" status
          | _ -> Alcotest.failf "unexpected answer %S" line)
        [ a; b ];
      hangup c)

let test_inflight_cap_shedding () =
  with_daemon
    ~tweak:(fun c ->
      { c with Daemon.d_jobs = 1; d_queue_bound = 100; d_max_inflight = 1 })
    (fun path ->
      let c = dial path in
      (* the reader handles lines sequentially: when line 2 is admitted
         request 1 is still unanswered, so the cap trips without any
         timing dependence *)
      say c "sleep 100";
      say c "sleep 100";
      let first = hear c in
      Alcotest.(check bool) "cap named" true
        (contains first "overload: client has 1 requests in flight (cap 1)");
      let second = hear c in
      Alcotest.(check bool) "accepted job still answered" true
        (contains second "\tok\t");
      hangup c)

let test_client_disconnect_mid_request () =
  with_daemon
    ~tweak:(fun c -> { c with Daemon.d_jobs = 1 })
    (fun path ->
      let c1 = dial path in
      say c1 "sleep 100";
      (* vanish while the job is queued or running: the daemon must
         swallow the dead socket and keep serving *)
      hangup c1;
      let c2 = dial path in
      say c2 "ping";
      Alcotest.(check string) "daemon survived the disconnect" "pong" (hear c2);
      say c2 "voting hypercube:2";
      Alcotest.(check bool) "still mapping" true (contains (hear c2) "\tok\t");
      hangup c2)

let test_quota_rejects () =
  with_daemon
    ~tweak:(fun c -> { c with Daemon.d_fuel_cap = Some 50 })
    (fun path ->
      let c = dial path in
      say c "voting hypercube:2 fuel=100";
      let line = hear c in
      Alcotest.(check bool) "explicit over-ask rejected by name" true
        (contains line "quota: fuel=100 exceeds cap 50");
      (* an unstated budget is clamped, not rejected *)
      say c "voting hypercube:2";
      Alcotest.(check bool) "clamped request runs" true
        (contains (hear c) "\tok\t");
      hangup c)

let test_malformed_line_answered () =
  with_daemon (fun path ->
      let c = dial path in
      say c "lonely";
      let line = hear c in
      Alcotest.(check bool) "error status" true (contains line "\terror\t");
      Alcotest.(check bool) "says what it wants" true
        (contains line "PROGRAM TOPOLOGY");
      say c "nbody ring:4 fuel=1 fuel=2";
      Alcotest.(check bool) "duplicate key named" true
        (contains (hear c) "duplicate key");
      hangup c)

let test_stats_verb () =
  with_daemon
    ~tweak:(fun c -> { c with Daemon.d_cache_bound = Some 2 })
    (fun path ->
      let c = dial path in
      say c "voting hypercube:2";
      ignore (hear c);
      say c "voting hypercube:2";
      ignore (hear c);
      say c "stats";
      let s = hear c in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "stats has %s" needle) true
            (contains s needle))
        [
          "(served 2)"; "(shed 0)"; "(quota-rejects 0)"; "(malformed 0)";
          "(programs (size 1) (bound 2) (hits 1) (misses 1)";
          "(topologies (size 1) (bound 2) (hits 1) (misses 1)";
          "(latency-ms (p50 "; "(p99 "; "(draining false)";
        ];
      hangup c)

(* the feeder drains one job per client lane in rotation, so a client
   flooding the queue only lengthens its own lane: a second client's
   single request must be answered after at most a couple of the
   flooder's jobs, not after all of them *)
let test_round_robin_fairness () =
  with_daemon
    ~tweak:(fun c -> { c with Daemon.d_jobs = 1 })
    (fun path ->
      let flood = dial path in
      List.iter (fun _ -> say flood "sleep 150") [ 1; 2; 3; 4; 5 ];
      (* wait until the lone worker holds the flooder's first job and
         the other four wait in its lane *)
      let rec settle n =
        if n = 0 then Alcotest.fail "flood never settled";
        say flood "stats";
        let s = hear flood in
        if not (contains s "(inflight 1)" && contains s "(queue-depth 4)")
        then begin
          Unix.sleepf 0.005;
          settle (n - 1)
        end
      in
      settle 100;
      let quiet = dial path in
      say quiet "sleep 150";
      (match fields (hear quiet) with
      | _ :: "sleep" :: _ :: status :: _ ->
        Alcotest.(check string) "quiet client answered ok" "ok" status
      | other -> Alcotest.failf "unexpected answer %S" (String.concat "\t" other));
      (* round-robin: at most inflight + one flood job + ours have been
         served when our answer lands; FIFO would make it all six *)
      say quiet "stats";
      let s = hear quiet in
      let served =
        let tag = "(served " in
        let rec find i =
          if i + String.length tag > String.length s then
            Alcotest.failf "no served count in %S" s
          else if String.sub s i (String.length tag) = tag then
            let j = ref (i + String.length tag) in
            let start = !j in
            while s.[!j] <> ')' do incr j done;
            int_of_string (String.sub s start (!j - start))
          else find (i + 1)
        in
        find 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "served %d <= 4 when the quiet client is answered"
           served)
        true (served <= 4);
      hangup quiet;
      (* the flooder's jobs all still complete *)
      List.iter
        (fun _ ->
          Alcotest.(check bool) "flood job ok" true
            (contains (hear flood) "\tok\t"))
        [ 1; 2; 3; 4; 5 ];
      hangup flood)

let test_stats_prometheus () =
  with_daemon (fun path ->
      let c = dial path in
      say c "voting hypercube:2";
      ignore (hear c);
      say c "stats --format prometheus";
      (* multi-line answer: the latency 0.99 quantile is always last *)
      let rec slurp acc =
        let line = hear c in
        if contains line "quantile=\"0.99\"" then List.rev (line :: acc)
        else slurp (line :: acc)
      in
      let body = slurp [] in
      let text = String.concat "\n" body in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "scrape has %s" needle) true
            (contains text needle))
        [
          "# TYPE oregami_requests_served_total counter";
          "oregami_requests_served_total 1";
          "# TYPE oregami_queue_depth gauge";
          "oregami_cache_size{cache=\"programs\"} 1";
          "oregami_cache_hits_total{cache=\"topologies\"}";
          "oregami_request_latency_ms{quantile=\"0.5\"}";
        ];
      (* exposition rule: every sample of a family sits under its own
         TYPE line, before the next family starts *)
      let rec families seen = function
        | [] -> List.rev seen
        | line :: rest ->
          if String.length line > 7 && String.sub line 0 7 = "# TYPE " then
            families (List.nth (String.split_on_char ' ' line) 2 :: seen) rest
          else families seen rest
      in
      let fams = families [] body in
      Alcotest.(check int) "each family declared once"
        (List.length fams)
        (List.length (List.sort_uniq compare fams));
      say c "stats --format csv";
      Alcotest.(check bool) "unknown format named" true
        (contains (hear c) "unknown stats format");
      hangup c)

let test_cluster_verb () =
  with_daemon (fun path ->
      let c = dial path in
      say c "cluster torus:4x4 synth:20:7 chaos=4:kill-procs=3;12:revive-procs=3";
      let line = hear c in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "summary has %s" needle) true
            (contains line needle))
        [ "(cluster "; "(events 22)"; "(admitted "; "(chaos-applied 2)" ];
      say c "cluster torus:4x4 synth:nope";
      Alcotest.(check bool) "bad trace spec named" true
        (contains (hear c) "error");
      hangup c)

let () =
  (* a client that hangs up mid-answer must surface as EPIPE on the
     daemon's write, not kill this process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Alcotest.run "daemon"
    [
      ( "daemon",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "answers match the batch service" `Quick
            test_answers_match_batch_service;
          Alcotest.test_case "queue-full shedding" `Quick test_queue_full_shedding;
          Alcotest.test_case "inflight cap shedding" `Quick
            test_inflight_cap_shedding;
          Alcotest.test_case "client disconnect mid-request" `Quick
            test_client_disconnect_mid_request;
          Alcotest.test_case "quota rejects" `Quick test_quota_rejects;
          Alcotest.test_case "malformed lines answered" `Quick
            test_malformed_line_answered;
          Alcotest.test_case "stats verb" `Quick test_stats_verb;
          Alcotest.test_case "round-robin fairness" `Quick
            test_round_robin_fairness;
          Alcotest.test_case "stats --format prometheus" `Quick
            test_stats_prometheus;
          Alcotest.test_case "cluster verb" `Quick test_cluster_verb;
        ] );
    ]
