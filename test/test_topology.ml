(* Tests for the topology library: family constructions, link tables,
   routing tables, Gray codes. *)

module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Gray = Oregami_topology.Gray
module Ugraph = Oregami_graph.Ugraph
module Traverse = Oregami_graph.Traverse

let t k = Topology.make k

let test_counts () =
  let cases =
    [
      (Topology.Line 7, 7, 6);
      (Topology.Ring 8, 8, 8);
      (Topology.Ring 2, 2, 1);
      (Topology.Mesh (3, 4), 12, 17);
      (Topology.Torus (3, 4), 12, 24);
      (Topology.Torus (2, 4), 8, 12);
      (* r = 2: row wraps would duplicate existing vertical links *)
      (Topology.Hypercube 4, 16, 32);
      (Topology.Complete 6, 6, 15);
      (Topology.Binary_tree 3, 15, 14);
      (Topology.Binomial_tree 4, 16, 15);
      (Topology.Butterfly 2, 12, 16);
      (Topology.Cube_connected_cycles 3, 24, 36);
      (Topology.Star_graph 4, 24, 36);
    ]
  in
  List.iter
    (fun (kind, nodes, links) ->
      let topo = t kind in
      Alcotest.(check int) (Topology.name topo ^ " nodes") nodes (Topology.node_count topo);
      Alcotest.(check int) (Topology.name topo ^ " links") links (Topology.link_count topo))
    cases

let test_degrees_and_diameter () =
  let cube = t (Topology.Hypercube 3) in
  Alcotest.(check bool) "Q3 3-regular" true (Ugraph.is_regular (Topology.graph cube));
  Alcotest.(check int) "Q3 degree" 3 (Topology.degree cube 0);
  Alcotest.(check int) "Q3 diameter" 3 (Topology.diameter cube);
  Alcotest.(check int) "ring 9 diameter" 4 (Topology.diameter (t (Topology.Ring 9)));
  Alcotest.(check int) "mesh 3x4 diameter" 5 (Topology.diameter (t (Topology.Mesh (3, 4))));
  Alcotest.(check int) "torus 4x4 diameter" 4 (Topology.diameter (t (Topology.Torus (4, 4))));
  (* star graph S4: diameter floor(3(n-1)/2) = 4 *)
  Alcotest.(check int) "S4 diameter" 4 (Topology.diameter (t (Topology.Star_graph 4)));
  Alcotest.(check bool) "S4 3-regular" true
    (Ugraph.is_regular (Topology.graph (t (Topology.Star_graph 4))));
  (* CCC(3): 3-regular *)
  Alcotest.(check bool) "CCC3 3-regular" true
    (Ugraph.is_regular (Topology.graph (t (Topology.Cube_connected_cycles 3))))

let test_connectivity () =
  List.iter
    (fun kind ->
      let topo = t kind in
      Alcotest.(check bool) (Topology.name topo ^ " connected") true
        (Traverse.is_connected (Topology.graph topo)))
    [
      Topology.Line 5; Topology.Ring 6; Topology.Mesh (3, 3); Topology.Torus (3, 3);
      Topology.Hypercube 4; Topology.Complete 5; Topology.Binary_tree 3;
      Topology.Binomial_tree 4; Topology.Butterfly 3; Topology.Cube_connected_cycles 3;
      Topology.Hex_mesh (3, 4); Topology.Star_graph 4;
    ]

let test_link_table () =
  let topo = t (Topology.Hypercube 3) in
  (* 12 links, ids consistent with endpoints *)
  Alcotest.(check int) "12 links" 12 (Topology.link_count topo);
  for l = 0 to 11 do
    let u, v = Topology.link_endpoints topo l in
    Alcotest.(check bool) "ordered" true (u < v);
    Alcotest.(check (option int)) "roundtrip" (Some l) (Topology.link_between topo u v);
    Alcotest.(check (option int)) "symmetric" (Some l) (Topology.link_between topo v u)
  done;
  Alcotest.(check (option int)) "non-adjacent" None (Topology.link_between topo 0 7)

let test_links_of_path () =
  let topo = t (Topology.Mesh (2, 3)) in
  (* path 0-1-2-5 *)
  let links = Topology.links_of_path topo [ 0; 1; 2; 5 ] in
  Alcotest.(check int) "three hops" 3 (List.length links);
  Alcotest.check_raises "non adjacent"
    (Invalid_argument "Topology.links_of_path: 0 and 5 not adjacent") (fun () ->
      ignore (Topology.links_of_path topo [ 0; 5 ]))

let test_mesh_coords () =
  let topo = t (Topology.Mesh (3, 4)) in
  Alcotest.(check (pair int int)) "coords" (2, 1) (Topology.mesh_coords topo 9);
  Alcotest.(check int) "node" 9 (Topology.mesh_node topo (2, 1));
  Alcotest.check_raises "wrong kind"
    (Invalid_argument "Topology.mesh_coords: not a mesh-like topology") (fun () ->
      ignore (Topology.mesh_coords (t (Topology.Ring 4)) 0))

let test_parse () =
  List.iter
    (fun (s, expect) ->
      match Topology.parse s with
      | Ok k -> Alcotest.(check bool) s true (k = expect)
      | Error m -> Alcotest.failf "parse %s: %s" s m)
    [
      ("ring:8", Topology.Ring 8);
      ("mesh:3x4", Topology.Mesh (3, 4));
      ("torus:4x8", Topology.Torus (4, 8));
      ("hypercube:3", Topology.Hypercube 3);
      ("cube:5", Topology.Hypercube 5);
      ("line:9", Topology.Line 9);
      ("complete:4", Topology.Complete 4);
      ("bintree:2", Topology.Binary_tree 2);
      ("binomial:5", Topology.Binomial_tree 5);
      ("butterfly:3", Topology.Butterfly 3);
      ("ccc:3", Topology.Cube_connected_cycles 3);
      ("hex:2x3", Topology.Hex_mesh (2, 3));
      ("star:4", Topology.Star_graph 4);
    ];
  List.iter
    (fun s ->
      match Topology.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %s" s)
    [ "ring"; "ring:x"; "mesh:4"; "mesh:4x"; "nosuch:4"; "hypercube:3x3" ]

let test_layout_distinct () =
  List.iter
    (fun kind ->
      let topo = t kind in
      let layout = Topology.layout topo in
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun p ->
          if Hashtbl.mem seen p then Alcotest.failf "%s: overlapping layout" (Topology.name topo);
          Hashtbl.add seen p ())
        layout)
    [
      Topology.Line 5; Topology.Ring 7; Topology.Mesh (3, 3); Topology.Hypercube 4;
      Topology.Binary_tree 3; Topology.Butterfly 2; Topology.Hex_mesh (2, 3);
    ]

(* ------------------------------------------------------------------ *)

let test_gray () =
  Alcotest.(check (list int)) "3-bit sequence" [ 0; 1; 3; 2; 6; 7; 5; 4 ]
    (Array.to_list (Gray.sequence 3));
  for i = 0 to 255 do
    Alcotest.(check int) "decode inverse" i (Gray.decode (Gray.encode i))
  done;
  (* consecutive codewords differ in one bit, including the wrap *)
  for i = 0 to 7 do
    let a = Gray.encode i and b = Gray.encode ((i + 1) mod 8) in
    Alcotest.(check bool) "adjacent" true (Option.is_some (Gray.differ_bit a b))
  done;
  Alcotest.(check (option int)) "differ bit" (Some 1) (Gray.differ_bit 4 6);
  Alcotest.(check (option int)) "two bits differ" None (Gray.differ_bit 0 3);
  Alcotest.(check (option int)) "equal" None (Gray.differ_bit 5 5)

(* ------------------------------------------------------------------ *)

let check_route topo u v (r : Routes.route) =
  Alcotest.(check bool) "starts at u" true (List.hd r.Routes.nodes = u);
  Alcotest.(check bool) "ends at v" true (List.nth r.Routes.nodes (List.length r.Routes.nodes - 1) = v);
  Alcotest.(check (list int)) "links match nodes" (Topology.links_of_path topo r.Routes.nodes)
    r.Routes.links

let test_shortest_routes () =
  let topo = t (Topology.Hypercube 3) in
  let rs = Routes.shortest_routes topo 0 7 in
  Alcotest.(check int) "six routes" 6 (List.length rs);
  List.iter
    (fun r ->
      check_route topo 0 7 r;
      Alcotest.(check int) "three hops" 3 (Routes.hops r))
    rs;
  Alcotest.(check int) "same node" 0 (Routes.hops (List.hd (Routes.shortest_routes topo 2 2)))

let test_ecube () =
  let topo = t (Topology.Hypercube 3) in
  let r = Routes.ecube topo 0 7 in
  (* lowest bit first: 0 -> 1 -> 3 -> 7 *)
  Alcotest.(check (list int)) "ecube node order" [ 0; 1; 3; 7 ] r.Routes.nodes;
  check_route topo 0 7 r;
  Alcotest.check_raises "not a hypercube" (Invalid_argument "Routes.ecube: not a hypercube")
    (fun () -> ignore (Routes.ecube (t (Topology.Ring 4)) 0 1))

let test_dimension_order () =
  let topo = t (Topology.Mesh (3, 4)) in
  (* 0 = (0,0) to 11 = (2,3): columns first *)
  let r = Routes.dimension_order topo 0 11 in
  Alcotest.(check (list int)) "row-major walk" [ 0; 1; 2; 3; 7; 11 ] r.Routes.nodes;
  check_route topo 0 11 r;
  (* torus goes the short way round *)
  let torus = t (Topology.Torus (1, 6)) in
  ignore torus;
  let torus = t (Topology.Torus (3, 6)) in
  let r = Routes.dimension_order torus 0 5 in
  Alcotest.(check (list int)) "wrap" [ 0; 5 ] r.Routes.nodes

let test_deterministic () =
  List.iter
    (fun kind ->
      let topo = t kind in
      let n = Topology.node_count topo in
      for u = 0 to min 5 (n - 1) do
        for v = 0 to min 5 (n - 1) do
          if u <> v then begin
            let r = Routes.deterministic topo u v in
            check_route topo u v r
          end
        done
      done)
    [ Topology.Hypercube 3; Topology.Mesh (2, 4); Topology.Torus (3, 3);
      Topology.Ring 6; Topology.Binary_tree 3; Topology.Butterfly 2 ]

let test_route_table () =
  let topo = t (Topology.Ring 5) in
  let table = Routes.route_table topo in
  Alcotest.(check int) "all pairs" 25 (Hashtbl.length table);
  let rs = Hashtbl.find table (0, 2) in
  Alcotest.(check int) "unique shortest on odd ring" 1 (List.length rs)

(* Property tests: the link table (link ids <-> endpoints <-> paths)
   must agree with the underlying graph on every topology family, and
   on degraded views of each family. *)

module Faults = Oregami_topology.Faults

let all_kinds =
  [
    Topology.Line 6; Topology.Ring 7; Topology.Mesh (3, 4); Topology.Torus (3, 4);
    Topology.Hypercube 3; Topology.Complete 5; Topology.Binary_tree 3;
    Topology.Binomial_tree 3; Topology.Butterfly 2; Topology.Cube_connected_cycles 3;
    Topology.Hex_mesh (3, 3); Topology.Star_graph 3; Topology.De_bruijn 3;
    Topology.Shuffle_exchange 3;
  ]

let test_topologies =
  let pristine = List.map t all_kinds in
  (* degraded variants: kill the highest-numbered processor where that
     leaves the survivors connected *)
  let degraded =
    List.filter_map
      (fun topo ->
        match Faults.make ~procs:[ Topology.node_count topo - 1 ] topo with
        | Error _ -> None
        | Ok f -> begin
          match Faults.degrade topo f with
          | Ok v -> Some v.Faults.topo
          | Error _ -> None
        end)
      pristine
  in
  pristine @ degraded

let check_link_table_consistency topo =
  let name = Topology.name topo in
  let g = Topology.graph topo in
  (* every link id round-trips through its ordered endpoints *)
  for l = 0 to Topology.link_count topo - 1 do
    let u, v = Topology.link_endpoints topo l in
    if not (u < v) then
      QCheck.Test.fail_reportf "%s: link %d endpoints (%d,%d) not ordered" name l u v;
    if Topology.link_between topo u v <> Some l then
      QCheck.Test.fail_reportf "%s: link_between %d %d lost link %d" name u v l;
    if Topology.link_between topo v u <> Some l then
      QCheck.Test.fail_reportf "%s: link_between not order-insensitive on link %d" name l
  done;
  (* and the table covers exactly the graph's adjacency *)
  let n = Topology.node_count topo in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      match Topology.link_between topo u v with
      | Some l ->
        let a, b = Topology.link_endpoints topo l in
        if (a, b) <> (min u v, max u v) then
          QCheck.Test.fail_reportf "%s: link %d is %d-%d, not %d-%d" name l a b u v
      | None ->
        if u <> v && Ugraph.mem_edge g u v then
          QCheck.Test.fail_reportf "%s: edge %d-%d has no link id" name u v
    done
  done;
  true

let qcheck_link_table =
  QCheck.Test.make ~name:"link table agrees with the graph on every family" ~count:28
    (QCheck.make (QCheck.Gen.oneofl test_topologies) ~print:Topology.name)
    check_link_table_consistency

let qcheck_links_of_path =
  (* a deterministic route's node path converts back to exactly its
     link list, on pristine and degraded machines alike *)
  let gen =
    QCheck.Gen.(
      let* topo = oneofl test_topologies in
      let alive = Array.of_list (Topology.alive_procs topo) in
      let* u = oneofl (Array.to_list alive) in
      let* v = oneofl (Array.to_list alive) in
      return (topo, u, v))
  in
  let print (topo, u, v) = Printf.sprintf "%s: %d -> %d" (Topology.name topo) u v in
  QCheck.Test.make ~name:"links_of_path inverts deterministic routes" ~count:500
    (QCheck.make gen ~print) (fun (topo, u, v) ->
      let r = Routes.deterministic topo u v in
      let relinked = Topology.links_of_path topo r.Routes.nodes in
      if relinked <> r.Routes.links then
        QCheck.Test.fail_reportf "route links %s but path converts to %s"
          (String.concat "," (List.map string_of_int r.Routes.links))
          (String.concat "," (List.map string_of_int relinked));
      (* each traversed link joins the consecutive nodes it claims to *)
      List.iteri
        (fun i l ->
          let a = List.nth r.Routes.nodes i and b = List.nth r.Routes.nodes (i + 1) in
          let x, y = Topology.link_endpoints topo l in
          if (x, y) <> (min a b, max a b) then
            QCheck.Test.fail_reportf "hop %d uses link %d (%d-%d) between %d and %d" i l
              x y a b)
        r.Routes.links;
      List.length r.Routes.links = max 0 (List.length r.Routes.nodes - 1))

let qcheck_nonadjacent_no_link =
  let gen =
    QCheck.Gen.(
      let* topo = oneofl test_topologies in
      let n = Topology.node_count topo in
      let* u = int_range 0 (n - 1) in
      let* v = int_range 0 (n - 1) in
      return (topo, u, v))
  in
  let print (topo, u, v) = Printf.sprintf "%s: %d ? %d" (Topology.name topo) u v in
  QCheck.Test.make ~name:"link_between is None exactly off the graph" ~count:500
    (QCheck.make gen ~print) (fun (topo, u, v) ->
      let adjacent = u <> v && Ugraph.mem_edge (Topology.graph topo) u v in
      adjacent = Option.is_some (Topology.link_between topo u v))

let () =
  Alcotest.run "topology"
    [
      ( "construction",
        [
          Alcotest.test_case "node and link counts" `Quick test_counts;
          Alcotest.test_case "degrees and diameters" `Quick test_degrees_and_diameter;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "link table" `Quick test_link_table;
          Alcotest.test_case "links_of_path" `Quick test_links_of_path;
          Alcotest.test_case "mesh coordinates" `Quick test_mesh_coords;
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "layout distinct" `Quick test_layout_distinct;
        ] );
      ("gray", [ Alcotest.test_case "gray codes" `Quick test_gray ]);
      ( "routes",
        [
          Alcotest.test_case "shortest routes" `Quick test_shortest_routes;
          Alcotest.test_case "ecube" `Quick test_ecube;
          Alcotest.test_case "dimension order" `Quick test_dimension_order;
          Alcotest.test_case "deterministic everywhere" `Quick test_deterministic;
          Alcotest.test_case "route table" `Quick test_route_table;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_link_table;
          QCheck_alcotest.to_alcotest qcheck_links_of_path;
          QCheck_alcotest.to_alcotest qcheck_nonadjacent_no_link;
        ] );
    ]
