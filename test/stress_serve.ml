(* Parallel-serve determinism stress (`dune build @stress`).

   Runs one mixed batch — healthy, seeded, budgeted, and poisoned
   requests over repeated program/topology pairs — through the service
   at jobs=1 and jobs=4, over and over, and demands byte-identical
   output (elapsed-ms column masked) and the same exit code every
   time.  Scheduling differs between iterations, so repetition is the
   point: a publication race or an order bug in the pool's collector
   shows up as a one-off mismatch long before it would in a single
   run. *)

open Oregami

let requests =
  [
    "voting hypercube:2";
    "nbody ring:8 seed=5";
    "voting hypercube:2 seed=7";
    "nbody torus:4x4 fuel=100";
    "./no-such-file.larcs ring:4";
    "nbody ring:8 seed=5";
    "voting hypercube:2 deadline-ms=0";
    "jacobi mesh:4x4 iters=1";
    "nbody torus:4x4 fuel=100 retries=0";
    "voting hypercube:3";
    "# a comment line, skipped but not renumbered";
    "nbody ring:8";
  ]

(* mask the wall-clock elapsed-ms column (index 7) *)
let mask line =
  String.split_on_char '\t' line
  |> List.mapi (fun i col -> if i = 7 then "*" else col)
  |> String.concat "\t"

let run_batch ~jobs =
  let req_file = Filename.temp_file "oregami-stress" ".req" in
  let out_file = Filename.temp_file "oregami-stress" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_file;
      Sys.remove out_file)
    (fun () ->
      Out_channel.with_open_text req_file (fun oc ->
          List.iter (fun r -> output_string oc (r ^ "\n")) requests);
      let code =
        In_channel.with_open_text req_file (fun ic ->
            Out_channel.with_open_text out_file (fun oc ->
                Service.serve ~jobs ic oc))
      in
      let lines =
        In_channel.with_open_text out_file In_channel.input_lines
        |> List.map mask
      in
      (code, lines))

let () =
  let iterations =
    match Sys.argv with
    | [| _; n |] -> int_of_string n
    | _ -> 12
  in
  for i = 1 to iterations do
    let code1, out1 = run_batch ~jobs:1 in
    let code4, out4 = run_batch ~jobs:4 in
    if code1 <> 1 || code4 <> 1 then begin
      Printf.eprintf
        "stress: iteration %d: poisoned batch should exit 1 (got %d / %d)\n" i
        code1 code4;
      exit 1
    end;
    if out1 <> out4 then begin
      Printf.eprintf "stress: iteration %d: jobs=4 diverged from jobs=1\n" i;
      List.iter2
        (fun a b -> if a <> b then Printf.eprintf "  jobs=1: %s\n  jobs=4: %s\n" a b)
        out1 out4;
      exit 1
    end
  done;
  Printf.printf "stress: %d iterations, jobs=4 output identical to jobs=1\n"
    iterations
