(* The pass-pipeline refactor must not move a single bit of the seed
   driver's output: the E11 dispatch table and the E8 simulated
   makespans below were captured from the monolithic driver before the
   strategy registry existed.  Plus: registry selection (--only /
   --exclude), determinism of the stats counters, and the newly
   registered KL / Stone / baseline strategies. *)

open Oregami
module Ugraph = Graph.Ugraph
module Mwm = Mapper.Mwm_contract
module Nn_embed = Mapper.Nn_embed
module Refine = Mapper.Refine

let topologies = [ "hypercube:3"; "mesh:4x4"; "torus:4x4"; "ring:8" ]
let topo s = Topology.make (Result.get_ok (Topology.parse s))

let report ?options spec topo_s =
  let compiled = Workloads.compile_exn spec in
  Driver.report ?options compiled (topo topo_s)

let mapping ?options spec topo_s =
  match report ?options spec topo_s with
  | Ok m, stats -> (m, stats)
  | Error e, _ -> Alcotest.failf "%s on %s: %s" spec.Workloads.w_name topo_s e

(* golden data: seed driver output per workload, in [topologies] order *)
let golden =
  [
    ("nbody", ([ "mwm+nn"; "group-theoretic"; "group-theoretic"; "mwm+nn" ],
               [ 444; 280; 276; 448 ]));
    ("matmul", ([ "blocks+nn"; "blocks+nn"; "blocks+nn"; "blocks+nn" ],
                [ 1710; 1278; 1152; 1794 ]));
    ("fft", ([ "canned:hypercube"; "group-theoretic"; "group-theoretic";
               "group-theoretic" ],
             [ 52; 36; 28; 62 ]));
    ("topsort", ([ "tiled+nn"; "tiled+nn"; "tiled+nn"; "tiled+nn" ],
                 [ 140; 95; 65; 140 ]));
    ("divconq", ([ "canned:binomial"; "canned:binomial"; "mwm+nn"; "mwm+nn" ],
                 [ 86; 48; 48; 90 ]));
    ("annealing", ([ "blocks+nn"; "blocks+nn"; "tiled+nn"; "blocks+nn" ],
                   [ 183; 153; 132; 183 ]));
    ("jacobi", ([ "canned:mesh"; "canned:mesh"; "canned:mesh"; "tiled+nn" ],
                [ 224; 112; 112; 256 ]));
    ("sor", ([ "blocks+nn"; "blocks+nn"; "blocks+nn"; "blocks+nn" ],
             [ 186; 132; 126; 210 ]));
    ("voting", ([ "group-theoretic"; "group-theoretic"; "group-theoretic";
                  "group-theoretic" ],
                [ 18; 20; 18; 20 ]));
    ("spawned", ([ "mwm+nn"; "mwm+nn"; "mwm+nn"; "mwm+nn" ],
                 [ 91; 90; 69; 125 ]));
    ("matmul3d", ([ "blocks+nn"; "systolic:projection"; "mwm+nn"; "blocks+nn" ],
                  [ 96; 48; 48; 128 ]));
  ]

let test_golden_dispatch () =
  List.iter
    (fun spec ->
      let name = spec.Workloads.w_name in
      let expected, _ = List.assoc name golden in
      List.iter2
        (fun topo_s want ->
          let m, _ = mapping spec topo_s in
          Alcotest.(check string)
            (Printf.sprintf "%s on %s" name topo_s)
            want m.Mapping.strategy)
        topologies expected)
    (Workloads.all ())

let test_golden_makespans () =
  List.iter
    (fun spec ->
      let name = spec.Workloads.w_name in
      let _, expected = List.assoc name golden in
      List.iter2
        (fun topo_s want ->
          let m, _ = mapping spec topo_s in
          Alcotest.(check int)
            (Printf.sprintf "%s on %s" name topo_s)
            want (Netsim.run m).Netsim.makespan)
        topologies expected)
    (Workloads.all ())

(* --only mwm must be the same computation as calling MWM-Contract and
   the embedding passes by hand, i.e. the seed's `general` function *)
let test_only_mwm_is_direct_mwm () =
  List.iter
    (fun (spec, topo_s) ->
      let t = topo topo_s in
      let tg = Workloads.task_graph_exn spec in
      let static = Taskgraph.static_graph tg in
      let r = Result.get_ok (Mwm.contract static ~procs:(Topology.node_count t)) in
      let k = Array.length r.Mwm.clusters in
      let cg = Ugraph.create k in
      List.iter
        (fun (u, v, w) ->
          let cu = r.Mwm.cluster_of.(u) and cv = r.Mwm.cluster_of.(v) in
          if cu <> cv then Ugraph.add_edge ~w cg cu cv)
        (Ugraph.edges static);
      let pc = Refine.improve_embedding cg t (Nn_embed.embed cg t) in
      let options = { Driver.default_options with Driver.only = [ "mwm" ] } in
      let m, _ = mapping ~options spec topo_s in
      Alcotest.(check string) "label" "mwm+nn" m.Mapping.strategy;
      Alcotest.(check (array int)) "clusters" r.Mwm.cluster_of m.Mapping.cluster_of;
      Alcotest.(check (array int)) "placement" pc m.Mapping.proc_of_cluster)
    [
      (Workloads.nbody ~n:15 ~s:2, "hypercube:3");
      (Workloads.sor ~n:6 ~iters:3, "mesh:4x4");
    ]

let test_deterministic () =
  (* the whole portfolio, including the RNG-drawing baselines: two runs
     must agree on the mapping and on every stats counter *)
  let options = { Driver.default_options with Driver.only = Strategy.names () } in
  List.iter
    (fun (spec, topo_s) ->
      let m1, s1 = mapping ~options spec topo_s in
      let m2, s2 = mapping ~options spec topo_s in
      Alcotest.(check string) "strategy" m1.Mapping.strategy m2.Mapping.strategy;
      Alcotest.(check (array int)) "assignment" (Mapping.assignment m1)
        (Mapping.assignment m2);
      Alcotest.(check (list (pair string int)))
        "counters" (Stats.counters s1) (Stats.counters s2))
    [
      (Workloads.nbody ~n:15 ~s:2, "hypercube:3");
      (Workloads.annealing ~n:6 ~sweeps:3, "torus:4x4");
    ]

let test_stats_recorded () =
  (* dispatch win: canned short-circuits, stats name the winner *)
  let m, stats = mapping (Workloads.fft ~d:4) "hypercube:3" in
  Alcotest.(check string) "strategy" "canned:hypercube" m.Mapping.strategy;
  (match Stats.winner stats with
  | Some ("canned", "canned:hypercube") -> ()
  | Some (n, l) -> Alcotest.failf "winner (%s, %s)" n l
  | None -> Alcotest.fail "no winner recorded");
  Alcotest.(check bool) "attempts" true (Stats.attempts stats <> []);
  Alcotest.(check int) "hop builds" 1 (Stats.hop_builds stats);
  (* compete win: attempts cover the rejected dispatch strategies too *)
  let m, stats = mapping (Workloads.sor ~n:6 ~iters:3) "ring:8" in
  Alcotest.(check string) "strategy" "blocks+nn" m.Mapping.strategy;
  (match Stats.winner stats with
  | Some ("blocks", "blocks+nn") -> ()
  | Some (n, l) -> Alcotest.failf "winner (%s, %s)" n l
  | None -> Alcotest.fail "no winner recorded");
  let attempted =
    List.map (fun (a : Stats.attempt) -> a.Stats.at_strategy) (Stats.attempts stats)
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("attempted " ^ s) true (List.mem s attempted))
    [ "canned"; "systolic"; "group"; "mwm"; "tiled"; "blocks" ];
  Alcotest.(check bool) "scored candidates" true
    (List.exists (fun c -> c.Stats.cd_score <> None) (Stats.candidates stats));
  (* rendering smoke: both forms are non-empty and mention the winner *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table mentions winner" true
    (contains (Stats.to_table stats) "blocks+nn");
  Alcotest.(check bool) "sexp mentions winner" true
    (contains (Stats.to_sexp stats) "blocks+nn")

let test_selection_errors () =
  let spec = Workloads.nbody ~n:15 ~s:2 in
  (* no applicable strategy: error + structured rejection reasons *)
  let options = { Driver.default_options with Driver.only = [ "canned" ] } in
  (match report ~options spec "ring:8" with
  | Ok m, _ -> Alcotest.failf "unexpectedly mapped via %s" m.Mapping.strategy
  | Error _, stats ->
    (match Stats.rejections stats with
    | ("canned", reason) :: _ ->
      Alcotest.(check bool) "reason text" true (String.length reason > 0)
    | [] -> Alcotest.fail "no rejection reasons recorded"
    | (s, _) :: _ -> Alcotest.failf "rejection from %s" s));
  (* unknown names are rejected up front, for --only and --exclude *)
  (match report ~options:{ Driver.default_options with Driver.only = [ "nosuch" ] }
           spec "ring:8"
   with
  | Error _, _ -> ()
  | Ok _, _ -> Alcotest.fail "unknown --only accepted");
  match report ~options:{ Driver.default_options with Driver.exclude = [ "nosuch" ] }
          spec "ring:8"
  with
  | Error _, _ -> ()
  | Ok _, _ -> Alcotest.fail "unknown --exclude accepted"

let test_ablation_strategies () =
  (* the off-by-default registry entries are reachable via --only and
     produce valid mappings with their own labels *)
  let spec = Workloads.nbody ~n:15 ~s:2 in
  List.iter
    (fun (name, label) ->
      let options = { Driver.default_options with Driver.only = [ name ] } in
      let m, stats = mapping ~options spec "hypercube:3" in
      Alcotest.(check string) (name ^ " label") label m.Mapping.strategy;
      Alcotest.(check bool) (name ^ " validates") true (Mapping.validate m = Ok ());
      match Stats.winner stats with
      | Some (w, _) -> Alcotest.(check string) (name ^ " winner") name w
      | None -> Alcotest.failf "%s: no winner recorded" name)
    [
      ("kl", "kl+nn");
      ("stone", "stone+nn");
      ("random", "random");
      ("naive-block", "block");
      ("round-robin", "round-robin");
    ];
  (* and they are absent from a default run's attempts *)
  let _, stats = mapping spec "hypercube:3" in
  List.iter
    (fun (a : Stats.attempt) ->
      Alcotest.(check bool) ("default excludes " ^ a.Stats.at_strategy) false
        (List.mem a.Stats.at_strategy
           [ "kl"; "stone"; "random"; "naive-block"; "round-robin" ]))
    (Stats.attempts stats)

let test_exclude () =
  (* excluding the dispatch winners reproduces the allow_* flag test *)
  let spec = Workloads.fft ~d:3 in
  let options = { Driver.default_options with Driver.exclude = [ "canned" ] } in
  let m, _ = mapping ~options spec "hypercube:3" in
  Alcotest.(check string) "canned excluded -> group" "group-theoretic"
    m.Mapping.strategy;
  let options =
    { Driver.default_options with Driver.exclude = [ "canned"; "group" ] }
  in
  let m, _ = mapping ~options spec "hypercube:3" in
  Alcotest.(check bool) "canned+group excluded -> general" true
    (List.mem m.Mapping.strategy [ "mwm+nn"; "tiled+nn"; "blocks+nn" ])

let () =
  Alcotest.run "pipeline"
    [
      ( "equivalence",
        [
          Alcotest.test_case "golden dispatch table (E11)" `Quick test_golden_dispatch;
          Alcotest.test_case "golden makespans (E8)" `Quick test_golden_makespans;
          Alcotest.test_case "--only mwm = direct MWM-Contract" `Quick
            test_only_mwm_is_direct_mwm;
        ] );
      ( "registry",
        [
          Alcotest.test_case "deterministic runs" `Quick test_deterministic;
          Alcotest.test_case "stats recorded" `Quick test_stats_recorded;
          Alcotest.test_case "selection errors" `Quick test_selection_errors;
          Alcotest.test_case "ablation strategies" `Quick test_ablation_strategies;
          Alcotest.test_case "exclude" `Quick test_exclude;
        ] );
    ]
