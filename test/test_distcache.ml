(* The topology-resident distance/route cache: CSR BFS agrees with the
   list-based reference on random graphs and on every parseable
   topology family, route enumeration matches [Routes.shortest_routes]
   including cap semantics, and the hop matrix is built exactly once
   per topology however many consumers query it. *)

module Csr = Oregami_graph.Csr
module Ugraph = Oregami_graph.Ugraph
module Traverse = Oregami_graph.Traverse
module Shortest = Oregami_graph.Shortest
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Distcache = Oregami_topology.Distcache
module Nn_embed = Oregami_mapper.Nn_embed
module Refine = Oregami_mapper.Refine
module Route = Oregami_mapper.Route
module Taskgraph = Oregami_taskgraph.Taskgraph
module Workloads = Oregami_workloads.Workloads
module Rng = Oregami_prelude.Rng

let t kind = Topology.make kind

let families =
  [
    "line:7"; "ring:8"; "mesh:3x4"; "torus:3x4"; "hypercube:4"; "complete:6";
    "bintree:3"; "binomial:4"; "butterfly:2"; "ccc:3"; "hex:3x4"; "star:4";
  ]

let parse_topo s = t (Result.get_ok (Topology.parse s))

(* flat CSR matrix vs the list-based reference, row by row *)
let check_matrix msg g =
  let n = Ugraph.node_count g in
  let csr = Csr.of_ugraph g in
  let seq = Csr.all_pairs_hops ~parallel:false csr in
  let par = Csr.all_pairs_hops ~parallel:true csr in
  for src = 0 to n - 1 do
    let reference = Traverse.bfs_dist g src in
    let row = Csr.bfs_dist csr src in
    Alcotest.(check (array int)) (Printf.sprintf "%s: bfs_dist src=%d" msg src) reference row;
    for v = 0 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "%s: hops[%d,%d]" msg src v)
        reference.(v)
        seq.((src * n) + v);
      Alcotest.(check int)
        (Printf.sprintf "%s: parallel hops[%d,%d]" msg src v)
        reference.(v)
        par.((src * n) + v)
    done
  done

let test_families () =
  List.iter (fun s -> check_matrix s (Topology.graph (parse_topo s))) families

let qcheck_random_graphs =
  QCheck.Test.make ~name:"CSR all-pairs hops = Traverse.bfs_dist on random graphs"
    ~count:100
    QCheck.(pair (int_range 1 40) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Ugraph.create n in
      for _ = 1 to 3 * n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then Ugraph.add_edge g u v
      done;
      let csr = Csr.of_ugraph g in
      let hops = Csr.all_pairs_hops csr in
      let ok = ref true in
      for src = 0 to n - 1 do
        let reference = Traverse.bfs_dist g src in
        for v = 0 to n - 1 do
          if hops.((src * n) + v) <> reference.(v) then ok := false
        done
      done;
      !ok)

let test_distcache_matrix () =
  List.iter
    (fun s ->
      let topo = parse_topo s in
      let dc = Distcache.hops topo in
      let reference = Shortest.all_pairs_hops (Topology.graph topo) in
      let n = Topology.node_count topo in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          Alcotest.(check int)
            (Printf.sprintf "%s: hop %d %d" s u v)
            reference.(u).(v) (Distcache.hop dc u v)
        done
      done)
    families

let routes_testable =
  Alcotest.testable
    (fun fmt rs ->
      Format.fprintf fmt "[%s]"
        (String.concat "; "
           (List.map
              (fun r -> String.concat "-" (List.map string_of_int r.Routes.nodes))
              rs)))
    (fun a b ->
      List.length a = List.length b
      && List.for_all2 (fun x y -> x.Routes.nodes = y.Routes.nodes && x.Routes.links = y.Routes.links) a b)

let test_routes_match () =
  List.iter
    (fun s ->
      let topo = parse_topo s in
      let n = Topology.node_count topo in
      for u = 0 to min (n - 1) 7 do
        for v = 0 to min (n - 1) 7 do
          Alcotest.check routes_testable
            (Printf.sprintf "%s: routes %d->%d" s u v)
            (Routes.shortest_routes topo u v)
            (Distcache.routes topo u v)
        done
      done)
    families

let test_route_cap () =
  (* corner-to-corner on a 4x4 mesh has C(6,3) = 20 shortest routes *)
  let topo = parse_topo "mesh:4x4" in
  let full = Routes.shortest_routes ~cap:64 topo 0 15 in
  Alcotest.(check int) "20 shortest routes" 20 (List.length full);
  let first5 = Distcache.routes ~cap:5 topo 0 15 in
  Alcotest.check routes_testable "cap 5 is a prefix"
    (List.filteri (fun i _ -> i < 5) full)
    first5;
  (* asking for more after a capped memo entry must re-enumerate *)
  let all = Distcache.routes ~cap:64 topo 0 15 in
  Alcotest.check routes_testable "cap upgrade re-enumerates" full all;
  (* and a later smaller cap is served as a prefix of the memo *)
  let first3 = Distcache.routes ~cap:3 topo 0 15 in
  Alcotest.check routes_testable "memoised prefix"
    (List.filteri (fun i _ -> i < 3) full)
    first3

let test_built_once () =
  let topo = parse_topo "mesh:4x4" in
  Alcotest.(check int) "no build before first query" 0 (Distcache.hop_builds topo);
  let tg = Workloads.task_graph_exn (Workloads.nbody ~n:12 ~s:1) in
  let cg = Taskgraph.static_graph tg in
  let pc = Nn_embed.embed cg topo in
  let pc = Refine.improve_embedding cg topo pc in
  let (_ : int) = Nn_embed.weighted_hops cg topo pc in
  let proc_of_task = Array.init tg.Taskgraph.n (fun i -> pc.(i)) in
  let (_ : Oregami_mapper.Mapping.phase_routing list * Route.stats) =
    Route.mm_route tg topo ~proc_of_task
  in
  let (_ : Distcache.t) = Distcache.hops topo in
  Alcotest.(check int) "one build across embed+refine+objective+route" 1
    (Distcache.hop_builds topo);
  (* a different topology value gets its own cache *)
  let other = parse_topo "mesh:4x4" in
  Alcotest.(check int) "fresh topology, fresh cache" 0 (Distcache.hop_builds other)

let test_parallel_threshold () =
  let saved = !Distcache.parallel_threshold in
  Fun.protect
    ~finally:(fun () -> Distcache.parallel_threshold := saved)
    (fun () ->
      Distcache.parallel_threshold := 4;
      let topo = parse_topo "torus:3x4" in
      let dc = Distcache.hops topo in
      let reference = Shortest.all_pairs_hops (Topology.graph topo) in
      let n = Topology.node_count topo in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          Alcotest.(check int)
            (Printf.sprintf "parallel build hop %d %d" u v)
            reference.(u).(v) (Distcache.hop dc u v)
        done
      done)

let test_neighbor_order () =
  (* O(1) insertion must still present neighbours in first-insertion
     order: NN-Embed's seed step and the BFS tie-breaks depend on it *)
  let g = Ugraph.create 5 in
  Ugraph.add_edge g 0 3;
  Ugraph.add_edge g 0 1;
  Ugraph.add_edge g 0 4;
  Ugraph.add_edge ~w:2 g 0 3;
  Alcotest.(check (list (pair int int)))
    "first-insertion order, merged weights"
    [ (3, 3); (1, 1); (4, 1) ]
    (Ugraph.neighbors g 0)

let () =
  Alcotest.run "distcache"
    [
      ( "csr",
        [
          Alcotest.test_case "families" `Quick test_families;
          QCheck_alcotest.to_alcotest qcheck_random_graphs;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hop matrix" `Quick test_distcache_matrix;
          Alcotest.test_case "built once" `Quick test_built_once;
          Alcotest.test_case "parallel threshold" `Quick test_parallel_threshold;
        ] );
      ( "routes",
        [
          Alcotest.test_case "match shortest_routes" `Quick test_routes_match;
          Alcotest.test_case "cap semantics" `Quick test_route_cap;
        ] );
      ( "ugraph",
        [ Alcotest.test_case "neighbor order" `Quick test_neighbor_order ] );
    ]
