(* Budgets, crash isolation, and the anytime contract.

   A strategy that raises mid-run must never abort the pipeline: it is
   recorded as a named Crashed attempt, the circuit breaker benches it
   after enough consecutive crashes, and the competition falls back to
   a cheap baseline so a valid mapping is still produced.  A budgeted
   run (fuel or deadline) always returns a valid mapping tagged with
   its degradation level, in bounded work. *)

open Oregami
module Budget = Mapper.Budget
module Isolate = Mapper.Isolate

let topo s = Topology.make (Result.get_ok (Topology.parse s))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let compiled name =
  let spec =
    List.find (fun s -> s.Workloads.w_name = name) (Workloads.all ())
  in
  Workloads.compile_exn spec

(* a deliberately broken strategy: passes the availability gate, then
   raises from its producer *)
let boom =
  {
    Strategy.name = "boom";
    tier = Strategy.Compete;
    default_on = false;
    doc = "always raises (test only)";
    available = (fun _ -> Ok ());
    produce = (fun _ -> failwith "kaboom");
  }

let mwm =
  match Strategy.find "mwm" with
  | Some s -> s
  | None -> Alcotest.fail "mwm not registered"

let compete ctx selection =
  Pipeline.compete ~score:Metrics.completion_time ctx selection

let check_valid m =
  match Mapping.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid mapping: %s" e

(* --- Budget ------------------------------------------------------- *)

let test_budget_fuel () =
  let b = Budget.create ~fuel:10 () in
  Alcotest.(check bool) "within fuel" true (Budget.poll b ~cost:5);
  Alcotest.(check bool) "still within" true (Budget.poll b ~cost:5);
  Alcotest.(check bool) "over" false (Budget.poll b ~cost:1);
  Alcotest.(check bool) "sticky" false (Budget.poll b ~cost:0);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check (option string)) "reason" (Some "fuel") (Budget.reason b)

let test_budget_deadline () =
  let b = Budget.create ~deadline_ms:0.0 () in
  Alcotest.(check bool) "expired at once" false (Budget.poll b ~cost:1);
  Alcotest.(check (option string)) "reason" (Some "deadline") (Budget.reason b)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "never trips" true (Budget.poll b ~cost:1000)
  done;
  Alcotest.(check bool) "not exhausted" false (Budget.exhausted b);
  Alcotest.(check int) "fuel still metered" 10_000_000 (Budget.fuel_used b)

let test_budget_notes () =
  let b = Budget.create ~fuel:0 () in
  ignore (Budget.poll b ~cost:1);
  Budget.note b "refine";
  Budget.note b "kl";
  Budget.note b "refine";
  Alcotest.(check (list string))
    "deduped, in order" [ "refine"; "kl" ] (Budget.truncations b)

(* --- Isolate ------------------------------------------------------ *)

let test_isolate_protect () =
  (match Isolate.protect (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "value" 42 v
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  match Isolate.protect (fun () -> failwith "pop") with
  | Ok _ -> Alcotest.fail "should have caught"
  | Error e ->
    Alcotest.(check bool) "names the exception" true
      (contains ~sub:"pop" e)

let test_isolate_breaker () =
  let br = Isolate.breaker ~threshold:2 () in
  Alcotest.(check bool) "admits fresh" true
    (Result.is_ok (Isolate.admit br "s"));
  Isolate.fail br "s";
  Alcotest.(check bool) "one strike" true (Result.is_ok (Isolate.admit br "s"));
  Isolate.fail br "s";
  Alcotest.(check bool) "open after threshold" true
    (Result.is_error (Isolate.admit br "s"));
  Alcotest.(check (list string)) "tripped" [ "s" ] (Isolate.tripped br);
  Isolate.succeed br "s";
  Alcotest.(check bool) "reset on success" true
    (Result.is_ok (Isolate.admit br "s"))

(* --- crash isolation in the pipeline ------------------------------ *)

let test_crash_is_isolated () =
  let ctx = Ctx.of_compiled (compiled "nbody") (topo "ring:8") in
  match compete ctx [ boom; mwm ] with
  | Error e -> Alcotest.failf "pipeline aborted: %s" e
  | Ok (m, deg) ->
    check_valid m;
    (* the crash forces the anytime fallback gate open, but a real
       candidate won, so the run still reports Fallback only if no
       candidate landed — here mwm landed *)
    Alcotest.(check bool) "not a fallback" true (deg <> Stats.Fallback);
    let crashed =
      List.filter_map
        (fun (a : Stats.attempt) ->
          match a.Stats.at_outcome with
          | Stats.Crashed e -> Some (a.Stats.at_strategy, e)
          | _ -> None)
        (Stats.attempts ctx.Ctx.stats)
    in
    (match crashed with
    | [ (name, e) ] ->
      Alcotest.(check string) "named failure" "boom" name;
      Alcotest.(check bool) "carries the exception" true
        (contains ~sub:"kaboom" e)
    | l -> Alcotest.failf "expected one crash, got %d" (List.length l));
    (* the named failure also shows up in the rejection report *)
    Alcotest.(check bool) "in rejections" true
      (List.exists
         (fun (s, r) -> s = "boom" && contains ~sub:"crashed" r)
         (Stats.rejections ctx.Ctx.stats))

let test_crash_alone_falls_back () =
  let ctx = Ctx.of_compiled (compiled "nbody") (topo "ring:8") in
  match compete ctx [ boom ] with
  | Error e -> Alcotest.failf "expected a fallback mapping, got: %s" e
  | Ok (m, deg) ->
    check_valid m;
    Alcotest.(check bool) "fallback" true (deg = Stats.Fallback);
    Alcotest.(check string) "baseline label" "fallback:block" m.Mapping.strategy

let test_breaker_benches_crasher () =
  let breaker = Isolate.breaker ~threshold:3 () in
  let c = compiled "nbody" in
  let t = topo "ring:8" in
  let outcome_of_boom ctx =
    match
      List.find_opt
        (fun (a : Stats.attempt) -> a.Stats.at_strategy = "boom")
        (Stats.attempts ctx.Ctx.stats)
    with
    | Some a -> a.Stats.at_outcome
    | None -> Alcotest.fail "boom never attempted"
  in
  (* three crashing runs trip the breaker... *)
  for _ = 1 to 3 do
    let ctx = Ctx.of_compiled ~breaker c t in
    (match compete ctx [ boom; mwm ] with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "run failed: %s" e);
    match outcome_of_boom ctx with
    | Stats.Crashed _ -> ()
    | _ -> Alcotest.fail "expected a crash outcome"
  done;
  (* ...after which boom is skipped with a named reason *)
  let ctx = Ctx.of_compiled ~breaker c t in
  (match compete ctx [ boom; mwm ] with
  | Ok (m, _) -> check_valid m
  | Error e -> Alcotest.failf "run failed: %s" e);
  match outcome_of_boom ctx with
  | Stats.Skipped reason ->
    Alcotest.(check bool) "circuit open" true
      (contains ~sub:"circuit open" reason)
  | _ -> Alcotest.fail "expected boom to be skipped"

(* --- anytime truncation ------------------------------------------- *)

let budgeted_options ?fuel ?deadline_ms () =
  { Driver.default_options with Driver.fuel; Driver.deadline_ms }

let test_deadline_zero_still_maps () =
  List.iter
    (fun (w, t) ->
      let options = budgeted_options ~deadline_ms:0.0 () in
      let ctx = Ctx.of_compiled ~options (compiled w) (topo t) in
      match Driver.run ctx with
      | Error e -> Alcotest.failf "%s on %s: %s" w t e
      | Ok (m, deg) ->
        check_valid m;
        Alcotest.(check bool)
          (Printf.sprintf "%s on %s degraded" w t)
          true (deg <> Stats.Full))
    [ ("nbody", "ring:8"); ("matmul", "mesh:4x4"); ("fft", "hypercube:3") ]

let test_tiny_fuel_still_maps () =
  let options = budgeted_options ~fuel:1 () in
  let ctx = Ctx.of_compiled ~options (compiled "nbody") (topo "torus:4x4") in
  match Driver.run ctx with
  | Error e -> Alcotest.failf "tiny fuel: %s" e
  | Ok (m, deg) ->
    check_valid m;
    Alcotest.(check bool) "degraded" true (deg <> Stats.Full);
    Alcotest.(check bool) "budget exhausted" true
      (Budget.exhausted ctx.Ctx.budget)

let test_truncation_sites_named () =
  let options = budgeted_options ~fuel:50 () in
  let ctx = Ctx.of_compiled ~options (compiled "nbody") (topo "ring:8") in
  match Driver.run ctx with
  | Error e -> Alcotest.failf "budgeted run: %s" e
  | Ok (m, deg) -> (
    check_valid m;
    match deg with
    | Stats.Truncated sites ->
      Alcotest.(check bool) "at least one site" true (sites <> [])
    | Stats.Fallback -> () (* nothing landed before the fuel died: fine *)
    | Stats.Full -> Alcotest.fail "50 fuel units cannot be a full run")

let test_unlimited_is_full () =
  let ctx = Ctx.of_compiled (compiled "nbody") (topo "ring:8") in
  match Driver.run ctx with
  | Error e -> Alcotest.failf "unbudgeted run: %s" e
  | Ok (m, deg) ->
    check_valid m;
    Alcotest.(check bool) "full" true (deg = Stats.Full);
    Alcotest.(check string) "golden strategy unchanged" "mwm+nn"
      m.Mapping.strategy

(* --- the batch service -------------------------------------------- *)

let parse_ok line =
  match Service.parse_request ~id:1 line with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "line %S skipped" line
  | Error e -> Alcotest.failf "line %S: %s" line e

let test_service_parse () =
  let r = parse_ok "nbody torus:4x4 fuel=100 retries=1 n=12 seed=7" in
  Alcotest.(check string) "program" "nbody" r.Service.rq_program;
  Alcotest.(check string) "topology" "torus:4x4" r.Service.rq_topology;
  Alcotest.(check (option int)) "fuel" (Some 100) r.Service.rq_options.Ctx.fuel;
  Alcotest.(check int) "retries" 1 r.Service.rq_retries;
  Alcotest.(check int) "seed" 7 r.Service.rq_options.Ctx.seed;
  Alcotest.(check bool) "fallback implied" true r.Service.rq_options.Ctx.fallback;
  Alcotest.(check (list (pair string int))) "bindings" [ ("n", 12) ]
    r.Service.rq_bindings;
  (match Service.parse_request ~id:1 "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank line should be skipped");
  (match Service.parse_request ~id:1 "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should be skipped");
  (match Service.parse_request ~id:1 "lonely" with
  | Error _ -> ()
  | _ -> Alcotest.fail "single token should be rejected");
  match Service.parse_request ~id:1 "nbody ring:4 fuel=much" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad fuel value should be rejected"

let test_service_duplicate_key_rejected () =
  (match Service.parse_request ~id:1 "nbody ring:4 fuel=10 fuel=20" with
  | Error e ->
    Alcotest.(check bool) "names the duplicate" true
      (String.length e >= 9 && String.sub e 0 9 = "duplicate")
  | Ok _ -> Alcotest.fail "duplicate option key should be rejected");
  (* duplicate parameter bindings are the same typo *)
  (match Service.parse_request ~id:1 "nbody ring:4 n=12 n=13" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate binding should be rejected");
  (* distinct keys still combine *)
  let r = parse_ok "nbody ring:4 fuel=10 deadline-ms=5 n=12" in
  Alcotest.(check (option int)) "fuel kept" (Some 10)
    r.Service.rq_options.Ctx.fuel

let test_service_program_size_cap () =
  let path = Filename.temp_file "oregami-big" ".larcs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (String.make (Service.max_program_bytes + 1) 'x');
      close_out oc;
      match Service.load_program path with
      | Error e ->
        let contains hay needle =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "names the cap" true (contains e "too large")
      | Ok _ -> Alcotest.fail "oversized program should be refused")

(* backoff spends wall-clock only: a zero-delay schedule and the
   default must produce identical outcomes *)
let test_service_backoff_pure_delay () =
  let instant =
    { Service.default_backoff with Service.bo_base_ms = 0.0; bo_cap_ms = 0.0 }
  in
  let req = parse_ok "nbody ring:8 deadline-ms=0 retries=2" in
  let a = Service.run_request ~backoff:instant req in
  let b = Service.run_request req in
  let mask r = { r with Service.r_elapsed_ms = 0.0 } in
  Alcotest.(check bool) "same outcome, wall-clock aside" true
    (mask a = mask b);
  Alcotest.(check bool) "retry schedule ran" true (a.Service.r_attempts >= 2)

let test_service_poisoned_request () =
  let r = Service.run_request (parse_ok "./no-such-file.larcs ring:4") in
  Alcotest.(check bool) "failed" false r.Service.r_ok;
  Alcotest.(check bool) "says why" true (r.Service.r_error <> "")

let test_service_budgeted_request () =
  let r = Service.run_request (parse_ok "nbody ring:8 deadline-ms=0") in
  Alcotest.(check bool) "ok" true r.Service.r_ok;
  Alcotest.(check bool) "degraded" true
    (r.Service.r_degradation <> Some Stats.Full);
  Alcotest.(check bool) "ran the retry schedule" true
    (r.Service.r_attempts >= 1 && r.Service.r_attempts <= 3)

let test_service_full_request () =
  let r = Service.run_request (parse_ok "voting hypercube:2") in
  Alcotest.(check bool) "ok" true r.Service.r_ok;
  Alcotest.(check (option int)) "one attempt suffices" (Some 1)
    (Some r.Service.r_attempts);
  Alcotest.(check bool) "full" true (r.Service.r_degradation = Some Stats.Full)

(* --- the shared artifact caches ----------------------------------- *)

(* elapsed wall-clock aside, a cached run must report exactly what a
   cold run reports *)
let masked r = { r with Service.r_elapsed_ms = 0.0 }

let test_service_cached_matches_uncached () =
  let caches = Service.caches () in
  List.iter
    (fun line ->
      let req = parse_ok line in
      let cold = Service.run_request req in
      let warm = Service.run_request ~caches req in
      let again = Service.run_request ~caches req in
      Alcotest.(check bool)
        (Printf.sprintf "%S: cached = uncached" line)
        true
        (masked warm = masked cold);
      Alcotest.(check bool)
        (Printf.sprintf "%S: cache hit = cache miss" line)
        true
        (masked again = masked cold))
    [
      "voting hypercube:2"; "nbody ring:8 seed=5"; "nbody torus:4x4 fuel=100";
      "voting hypercube:2 deadline-ms=0";
    ]

let test_service_caches_errors_too () =
  let caches = Service.caches () in
  let req = parse_ok "./no-such-file.larcs ring:4" in
  let r1 = Service.run_request ~caches req in
  let r2 = Service.run_request ~caches req in
  Alcotest.(check bool) "failed" false r1.Service.r_ok;
  Alcotest.(check string) "same error from the cache" r1.Service.r_error
    r2.Service.r_error;
  (* bad topology specs are cached under their own key as well *)
  let r3 = Service.run_request ~caches (parse_ok "voting notatopo:9") in
  Alcotest.(check bool) "bad topology failed" false r3.Service.r_ok

let test_service_cache_shares_topology () =
  let caches = Service.caches () in
  (* two different programs on one topology: the hop matrix must be
     built once, by the topology-cache build, and then shared *)
  ignore (Service.run_request ~caches (parse_ok "voting hypercube:3"));
  ignore (Service.run_request ~caches (parse_ok "nbody hypercube:3 seed=3"));
  match Oregami_prelude.Memo.find_opt caches.Service.c_topologies "hypercube:3" with
  | None | Some (Error _) -> Alcotest.fail "topology not cached"
  | Some (Ok t) ->
    Alcotest.(check int) "hop matrix built exactly once" 1
      (Oregami_topology.Distcache.hop_builds t)

(* distinct bindings must land under distinct program-cache keys *)
let test_service_cache_program_keys () =
  let caches = Service.caches () in
  ignore (Service.run_request ~caches (parse_ok "nbody ring:8 n=15"));
  ignore (Service.run_request ~caches (parse_ok "nbody ring:8 n=31"));
  ignore (Service.run_request ~caches (parse_ok "nbody ring:8 seed=9 n=15"));
  Alcotest.(check int) "two compiled programs" 2
    (Oregami_prelude.Memo.length caches.Service.c_programs);
  Alcotest.(check int) "one topology" 1
    (Oregami_prelude.Memo.length caches.Service.c_topologies)

let () =
  Alcotest.run "budget"
    [
      ( "budget",
        [
          Alcotest.test_case "fuel" `Quick test_budget_fuel;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "notes" `Quick test_budget_notes;
        ] );
      ( "isolate",
        [
          Alcotest.test_case "protect" `Quick test_isolate_protect;
          Alcotest.test_case "breaker" `Quick test_isolate_breaker;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "crash isolated" `Quick test_crash_is_isolated;
          Alcotest.test_case "crash-only falls back" `Quick
            test_crash_alone_falls_back;
          Alcotest.test_case "breaker benches crasher" `Quick
            test_breaker_benches_crasher;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "deadline 0" `Quick test_deadline_zero_still_maps;
          Alcotest.test_case "tiny fuel" `Quick test_tiny_fuel_still_maps;
          Alcotest.test_case "truncation sites" `Quick
            test_truncation_sites_named;
          Alcotest.test_case "unlimited is full" `Quick test_unlimited_is_full;
        ] );
      ( "service",
        [
          Alcotest.test_case "parse" `Quick test_service_parse;
          Alcotest.test_case "duplicate key rejected" `Quick
            test_service_duplicate_key_rejected;
          Alcotest.test_case "program size cap" `Quick
            test_service_program_size_cap;
          Alcotest.test_case "backoff is pure delay" `Quick
            test_service_backoff_pure_delay;
          Alcotest.test_case "poisoned request" `Quick
            test_service_poisoned_request;
          Alcotest.test_case "budgeted request" `Quick
            test_service_budgeted_request;
          Alcotest.test_case "full request" `Quick test_service_full_request;
          Alcotest.test_case "cached matches uncached" `Quick
            test_service_cached_matches_uncached;
          Alcotest.test_case "errors cached" `Quick
            test_service_caches_errors_too;
          Alcotest.test_case "topology shared" `Quick
            test_service_cache_shares_topology;
          Alcotest.test_case "program keys" `Quick
            test_service_cache_program_keys;
        ] );
    ]
