(* Tests for the prelude: priority queue, union-find, bitset, RNG,
   table rendering, domain pool, build-once memo table. *)

module Pqueue = Oregami_prelude.Pqueue
module Union_find = Oregami_prelude.Union_find
module Bitset = Oregami_prelude.Bitset
module Rng = Oregami_prelude.Rng
module Tab = Oregami_prelude.Tab
module Pool = Oregami_prelude.Pool
module Memo = Oregami_prelude.Memo

(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ];
  Alcotest.(check int) "length" 4 (Pqueue.length q);
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "a")) (Pqueue.peek q);
  let drained = List.init 4 (fun _ -> Option.get (Pqueue.pop q)) in
  Alcotest.(check (list (pair int string)))
    "sorted" [ (1, "a"); (2, "b"); (3, "c"); (5, "e") ] drained;
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_ties_fifo () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 7 v) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ] order

let test_pqueue_to_sorted_list () =
  let q = Pqueue.of_list [ (3, 'c'); (1, 'a'); (2, 'b') ] in
  Alcotest.(check (list (pair int char)))
    "sorted copy" [ (1, 'a'); (2, 'b'); (3, 'c') ] (Pqueue.to_sorted_list q);
  Alcotest.(check int) "queue unchanged" 3 (Pqueue.length q)

let qcheck_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let q = Pqueue.create () in
      List.iter (fun x -> Pqueue.push q x x) xs;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "six sets" 6 (Union_find.count_sets uf);
  Alcotest.(check bool) "union 0 1" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union again" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check int) "size" 2 (Union_find.size uf 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check int) "merged size" 4 (Union_find.size uf 2);
  Alcotest.(check int) "three sets" 3 (Union_find.count_sets uf)

let test_union_find_groups () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 0 4);
  ignore (Union_find.union uf 1 3);
  let groups =
    Union_find.groups uf |> Array.to_list |> List.filter (fun g -> g <> [])
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "groups" [ [ 0; 4 ]; [ 1; 3 ]; [ 2 ] ] groups

let qcheck_union_find_transitive =
  QCheck.Test.make ~name:"union-find: same is an equivalence" ~count:100
    QCheck.(small_list (pair (int_range 0 9) (int_range 0 9)))
    (fun pairs ->
      let uf = Union_find.create 10 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* transitivity via representative equality *)
      let ok = ref true in
      for a = 0 to 9 do
        for b = 0 to 9 do
          for c = 0 to 9 do
            if Union_find.same uf a b && Union_find.same uf b c && not (Union_find.same uf a c)
            then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "initially empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "elements sorted" [ 0; 64; 99 ] (Bitset.elements s);
  Alcotest.(check (option int)) "choose" (Some 0) (Bitset.choose s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index 10 out of [0,10)")
    (fun () -> Bitset.add s 10)

let test_bitset_set_ops () =
  let a = Bitset.create 20 and b = Bitset.create 20 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 2; 3; 4 ];
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.elements i);
  Alcotest.(check bool) "full" true (Bitset.cardinal (Bitset.full 20) = 20)

let qcheck_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a list-set model" ~count:200
    QCheck.(small_list (pair bool (int_range 0 49)))
    (fun ops ->
      let s = Bitset.create 50 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      let want = Hashtbl.fold (fun i () acc -> i :: acc) model [] |> List.sort compare in
      Bitset.elements s = want && Bitset.cardinal s = List.length want)

(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 100 in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 100 do
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 30 (fun i -> i) in
  Rng.shuffle rng a;
  Alcotest.(check (list int)) "still a permutation" (List.init 30 (fun i -> i))
    (List.sort compare (Array.to_list a))

let test_rng_sample () =
  let rng = Rng.create 11 in
  let s = Rng.sample rng 10 4 in
  Alcotest.(check int) "size" 4 (List.length s);
  Alcotest.(check (list int)) "sorted distinct" (List.sort_uniq compare s) s;
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10)) s

(* ------------------------------------------------------------------ *)

let test_tab_render () =
  let out = Tab.render ~header:[ "name"; "n" ] [ [ "alpha"; "1" ]; [ "b"; "200" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  Alcotest.(check bool) "separator" true
    (String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_tab_ragged () =
  let out = Tab.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_tab_bar () =
  Alcotest.(check string) "half bar" "#####     " (Tab.bar ~width:10 1.0 2.0);
  Alcotest.(check string) "clamped" "##########" (Tab.bar ~width:10 5.0 2.0);
  Alcotest.(check string) "zero max" "          " (Tab.bar ~width:10 1.0 0.0)

let test_tab_fixed () = Alcotest.(check string) "fixed" "3.14" (Tab.fixed 2 3.14159)

(* ------------------------------------------------------------------ *)

(* results must reach emit in index order at every pool width, and the
   sequential jobs=1 path must agree with the parallel one *)
let test_pool_ordered_emission () =
  let n = 50 in
  List.iter
    (fun jobs ->
      let emitted = ref [] in
      Pool.run ~jobs ~n
        ~task:(fun i -> i * i)
        ~emit:(fun i v -> emitted := (i, v) :: !emitted);
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "in order at jobs=%d" jobs)
        (List.init n (fun i -> (i, i * i)))
        (List.rev !emitted))
    [ 1; 2; 4; 7 ]

let test_pool_every_task_once () =
  let n = 40 in
  let hits = Array.make n 0 in
  let lock = Mutex.create () in
  Pool.run ~jobs:4 ~n
    ~task:(fun i ->
      Mutex.protect lock (fun () -> hits.(i) <- hits.(i) + 1);
      i)
    ~emit:(fun _ _ -> ());
  Alcotest.(check (list int)) "each index claimed exactly once"
    (List.init n (fun _ -> 1))
    (Array.to_list hits)

let test_pool_map () =
  let arr = Array.init 31 (fun i -> i) in
  Alcotest.(check (list int)) "map ~jobs:3"
    (Array.to_list (Array.map (fun x -> x + 100) arr))
    (Array.to_list (Pool.map ~jobs:3 (fun x -> x + 100) arr))

(* a raising task must re-raise in the caller at the index where a
   sequential run would have stopped, after joining every worker *)
let test_pool_task_exception () =
  List.iter
    (fun jobs ->
      let emitted = ref [] in
      match
        Pool.run ~jobs ~n:20
          ~task:(fun i -> if i = 7 then failwith "boom" else i)
          ~emit:(fun i _ -> emitted := i :: !emitted)
      with
      | () -> Alcotest.failf "jobs=%d: expected Failure" jobs
      | exception Failure msg ->
        Alcotest.(check string) "first failure in index order" "boom" msg;
        (* everything before the failing index was emitted, in order *)
        Alcotest.(check (list int))
          (Printf.sprintf "prefix emitted at jobs=%d" jobs)
          [ 0; 1; 2; 3; 4; 5; 6 ]
          (List.rev !emitted))
    [ 1; 4 ]

let test_pool_emit_exception () =
  match
    Pool.run ~jobs:3 ~n:10
      ~task:(fun i -> i)
      ~emit:(fun i _ -> if i = 4 then failwith "sink full")
  with
  | () -> Alcotest.fail "expected the emit failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "emit error" "sink full" msg

let test_pool_empty_and_single () =
  Pool.run ~jobs:4 ~n:0 ~task:(fun _ -> assert false) ~emit:(fun _ _ -> assert false);
  let got = ref None in
  Pool.run ~jobs:4 ~n:1 ~task:(fun i -> i + 41) ~emit:(fun _ v -> got := Some v);
  Alcotest.(check (option int)) "single task" (Some 41) !got

(* ------------------------------------------------------------------ *)

(* spin until a predicate holds; the feeder's workers run on their own
   domains, so tests must wait for them to observe state changes *)
let await what p =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

let test_feeder_processes_everything () =
  let processed = Atomic.make 0 in
  let f = Pool.feeder ~jobs:3 ~bound:100 (fun _ -> Atomic.incr processed) in
  for i = 1 to 50 do
    Alcotest.(check bool) "within bound" true (Pool.offer f i)
  done;
  Pool.drain f;
  Alcotest.(check int) "every accepted job ran" 50 (Atomic.get processed)

let test_feeder_sheds_at_bound () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let f =
    Pool.feeder ~jobs:1 ~bound:2 (fun _ ->
        Mutex.lock gate;
        Mutex.unlock gate)
  in
  Alcotest.(check bool) "first accepted" true (Pool.offer f 1);
  (* the lone worker picks job 1 and blocks on the gate *)
  await "worker pickup" (fun () -> Pool.inflight f = 1 && Pool.depth f = 0);
  Alcotest.(check bool) "queue slot 1" true (Pool.offer f 2);
  Alcotest.(check bool) "queue slot 2" true (Pool.offer f 3);
  Alcotest.(check bool) "bound reached: shed" false (Pool.offer f 4);
  Alcotest.(check int) "depth at bound" 2 (Pool.depth f);
  Mutex.unlock gate;
  Pool.drain f;
  Alcotest.(check int) "drained empty" 0 (Pool.depth f)

let test_feeder_zero_bound_sheds_all () =
  let f = Pool.feeder ~jobs:2 ~bound:0 (fun _ -> ()) in
  Alcotest.(check bool) "no queue slots" false (Pool.offer f 1);
  Pool.drain f

let test_feeder_rejects_after_drain () =
  let f = Pool.feeder ~jobs:2 ~bound:8 (fun _ -> ()) in
  Pool.drain f;
  Alcotest.(check bool) "drained feeder sheds" false (Pool.offer f 1)

let test_feeder_handler_exception_survives () =
  let processed = Atomic.make 0 in
  let f =
    Pool.feeder ~jobs:1 ~bound:16 (fun i ->
        if i = 1 then failwith "handler bug" else Atomic.incr processed)
  in
  Alcotest.(check bool) "poison job accepted" true (Pool.offer f 1);
  Alcotest.(check bool) "next job accepted" true (Pool.offer f 2);
  Pool.drain f;
  Alcotest.(check int) "worker outlived the raise" 1 (Atomic.get processed)

(* ------------------------------------------------------------------ *)

let test_memo_builds_once () =
  let m = Memo.create () in
  let builds = ref 0 in
  let build () = incr builds; 42 in
  Alcotest.(check int) "first get builds" 42 (Memo.get m "k" build);
  Alcotest.(check int) "second get cached" 42 (Memo.get m "k" build);
  Alcotest.(check int) "one build" 1 !builds;
  Alcotest.(check (option int)) "find_opt" (Some 42) (Memo.find_opt m "k");
  Alcotest.(check (option int)) "absent" None (Memo.find_opt m "other");
  Alcotest.(check int) "length" 1 (Memo.length m)

let test_memo_builder_exception_releases_claim () =
  let m = Memo.create () in
  (match Memo.get m "k" (fun () -> failwith "build failed") with
  | _ -> Alcotest.fail "expected the build failure to propagate"
  | exception Failure _ -> ());
  Alcotest.(check (option int)) "claim released" None (Memo.find_opt m "k");
  Alcotest.(check int) "retry builds fresh" 7 (Memo.get m "k" (fun () -> 7))

(* many domains racing on one key: the builder must run exactly once
   and everyone must observe the published value *)
let test_memo_single_build_under_race () =
  let m = Memo.create () in
  let builds = Atomic.make 0 in
  let build () =
    Atomic.incr builds;
    (* widen the race window so latecomers land in the Building state *)
    ignore (Sys.opaque_identity (Array.init 10_000 (fun i -> i)));
    "value"
  in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Memo.get m "key" build))
  in
  let results = List.map Domain.join domains in
  Alcotest.(check (list string)) "all see the published value"
    [ "value"; "value"; "value"; "value" ] results;
  Alcotest.(check int) "built exactly once" 1 (Atomic.get builds)

(* ------------------------------------------------------------------ *)

let test_memo_lru_eviction_order () =
  let m = Memo.create ~bound:2 () in
  Alcotest.(check int) "a" 1 (Memo.get m "a" (fun () -> 1));
  Alcotest.(check int) "b" 2 (Memo.get m "b" (fun () -> 2));
  (* touch [a]: [b] becomes the least recently used *)
  Alcotest.(check int) "a again (hit)" 1 (Memo.get m "a" (fun () -> 99));
  Alcotest.(check int) "c evicts b" 3 (Memo.get m "c" (fun () -> 3));
  Alcotest.(check (option int)) "a survived (recently used)" (Some 1)
    (Memo.find_opt m "a");
  Alcotest.(check (option int)) "b evicted" None (Memo.find_opt m "b");
  Alcotest.(check (option int)) "c resident" (Some 3) (Memo.find_opt m "c");
  (* rebuilding [b] now evicts [a], the oldest of {a, c} *)
  Alcotest.(check int) "b rebuilds after eviction" 20 (Memo.get m "b" (fun () -> 20));
  Alcotest.(check (option int)) "a evicted in turn" None (Memo.find_opt m "a")

let test_memo_lru_counters () =
  let m = Memo.create ~bound:2 () in
  ignore (Memo.get m "a" (fun () -> 1));
  ignore (Memo.get m "b" (fun () -> 2));
  ignore (Memo.get m "a" (fun () -> 1));
  ignore (Memo.get m "c" (fun () -> 3));
  let s = Memo.stats m in
  Alcotest.(check int) "size at bound" 2 s.Memo.mc_size;
  Alcotest.(check (option int)) "bound reported" (Some 2) s.Memo.mc_bound;
  Alcotest.(check int) "hits" 1 s.Memo.mc_hits;
  Alcotest.(check int) "misses" 3 s.Memo.mc_misses;
  Alcotest.(check int) "evictions" 1 s.Memo.mc_evictions;
  (* find_opt is a pure peek: nothing moves *)
  ignore (Memo.find_opt m "c");
  Alcotest.(check int) "peek counts nothing" 1 (Memo.stats m).Memo.mc_hits

let test_memo_unbounded_never_evicts () =
  let m = Memo.create () in
  for i = 0 to 99 do
    ignore (Memo.get m i (fun () -> i))
  done;
  let s = Memo.stats m in
  Alcotest.(check int) "all resident" 100 s.Memo.mc_size;
  Alcotest.(check (option int)) "no bound" None s.Memo.mc_bound;
  Alcotest.(check int) "no evictions" 0 s.Memo.mc_evictions

let test_memo_bound_validated () =
  Alcotest.check_raises "bound 0 refused"
    (Invalid_argument "Memo.create: bound must be >= 1") (fun () ->
      ignore (Memo.create ~bound:0 ()))

(* domains hammering a bounded table with overlapping key sets: the
   residency bound must hold at every observation point, and every get
   must return the right value despite evictions and rebuilds *)
let test_memo_lru_bound_under_race () =
  let bound = 4 in
  let m = Memo.create ~bound () in
  let worker seed () =
    let rng = Rng.create seed in
    let ok = ref true in
    for _ = 1 to 500 do
      let k = Rng.int rng 16 in
      if Memo.get m k (fun () -> k * 3) <> k * 3 then ok := false;
      if (Memo.stats m).Memo.mc_size > bound then ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (100 + i))) in
  let results = List.map Domain.join domains in
  Alcotest.(check (list bool)) "values right, bound never exceeded"
    [ true; true; true; true ] results;
  let s = Memo.stats m in
  Alcotest.(check bool) "final size within bound" true (s.Memo.mc_size <= bound);
  Alcotest.(check bool) "evictions happened (16 keys, bound 4)" true
    (s.Memo.mc_evictions > 0);
  Alcotest.(check int) "counters account for every get" 2000
    (s.Memo.mc_hits + s.Memo.mc_misses)

let () =
  Alcotest.run "prelude"
    [
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_order;
          Alcotest.test_case "FIFO ties" `Quick test_pqueue_ties_fifo;
          Alcotest.test_case "to_sorted_list" `Quick test_pqueue_to_sorted_list;
          QCheck_alcotest.to_alcotest qcheck_pqueue_sorts;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basics" `Quick test_union_find_basic;
          Alcotest.test_case "groups" `Quick test_union_find_groups;
          QCheck_alcotest.to_alcotest qcheck_union_find_transitive;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          QCheck_alcotest.to_alcotest qcheck_bitset_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample" `Quick test_rng_sample;
        ] );
      ( "tab",
        [
          Alcotest.test_case "render" `Quick test_tab_render;
          Alcotest.test_case "ragged rows" `Quick test_tab_ragged;
          Alcotest.test_case "bar" `Quick test_tab_bar;
          Alcotest.test_case "fixed" `Quick test_tab_fixed;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordered emission" `Quick test_pool_ordered_emission;
          Alcotest.test_case "every task once" `Quick test_pool_every_task_once;
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "task exception" `Quick test_pool_task_exception;
          Alcotest.test_case "emit exception" `Quick test_pool_emit_exception;
          Alcotest.test_case "empty and single" `Quick test_pool_empty_and_single;
        ] );
      ( "feeder",
        [
          Alcotest.test_case "processes everything" `Quick
            test_feeder_processes_everything;
          Alcotest.test_case "sheds at the bound" `Quick test_feeder_sheds_at_bound;
          Alcotest.test_case "zero bound sheds all" `Quick
            test_feeder_zero_bound_sheds_all;
          Alcotest.test_case "rejects after drain" `Quick
            test_feeder_rejects_after_drain;
          Alcotest.test_case "handler exception survives" `Quick
            test_feeder_handler_exception_survives;
        ] );
      ( "memo",
        [
          Alcotest.test_case "builds once" `Quick test_memo_builds_once;
          Alcotest.test_case "build failure releases claim" `Quick
            test_memo_builder_exception_releases_claim;
          Alcotest.test_case "single build under race" `Quick
            test_memo_single_build_under_race;
          Alcotest.test_case "LRU eviction order" `Quick test_memo_lru_eviction_order;
          Alcotest.test_case "LRU counters" `Quick test_memo_lru_counters;
          Alcotest.test_case "unbounded never evicts" `Quick
            test_memo_unbounded_never_evicts;
          Alcotest.test_case "bound validated" `Quick test_memo_bound_validated;
          Alcotest.test_case "bound holds under racing domains" `Quick
            test_memo_lru_bound_under_race;
        ] );
    ]
