(* Tests for the MAPPER algorithms: MWM-Contract (with the paper's
   Fig 5 scenario and the |V| <= 2P optimality claim), group-theoretic
   contraction (Fig 4), canned mappings, NN-Embed, MM-Route (Fig 6),
   the binomial-mesh construction, and the Stone baseline. *)

module Ugraph = Oregami_graph.Ugraph
module Digraph = Oregami_graph.Digraph
module Topology = Oregami_topology.Topology
module Routes = Oregami_topology.Routes
module Gray = Oregami_topology.Gray
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Mapping = Oregami_mapper.Mapping
module Mwm = Oregami_mapper.Mwm_contract
module Group_contract = Oregami_mapper.Group_contract
module Canned = Oregami_mapper.Canned
module Nn_embed = Oregami_mapper.Nn_embed
module Route = Oregami_mapper.Route
module Stone = Oregami_mapper.Stone
module Baselines = Oregami_mapper.Baselines
module Binomial_mesh = Oregami_mapper.Binomial_mesh
module Brute = Oregami_matching.Brute
module Rng = Oregami_prelude.Rng
module Workloads = Oregami_workloads.Workloads

(* ------------------------------------------------------------------ *)
(* MWM-Contract                                                        *)

(* A 12-task graph shaped like the paper's Fig 5 walkthrough: six heavy
   edges that the greedy phase merges into 2-task clusters, a weight-15
   edge whose merge would exceed B/2 = 2 tasks, and light edges for the
   matching phase. *)
let fig5_like_graph () =
  Ugraph.of_edges 12
    [
      (0, 1, 20); (2, 3, 18); (1, 2, 15);  (* 15-edge must NOT merge *)
      (4, 5, 16); (6, 7, 12); (8, 9, 10); (10, 11, 8);
      (3, 4, 2); (5, 6, 3); (7, 8, 1); (9, 10, 2); (11, 0, 1);
    ]

let test_mwm_fig5 () =
  let g = fig5_like_graph () in
  match Mwm.contract ~b:4 g ~procs:3 with
  | Error m -> Alcotest.failf "contract: %s" m
  | Ok r ->
    Alcotest.(check int) "three clusters" 3 (Array.length r.Mwm.clusters);
    Array.iter
      (fun members ->
        Alcotest.(check bool) "capacity 4" true (List.length members <= 4))
      r.Mwm.clusters;
    Alcotest.(check int) "six greedy merges" 6 r.Mwm.greedy_merges;
    Alcotest.(check int) "three matched pairs" 3 r.Mwm.matched_pairs;
    (* the weight-15 edge joins tasks 1 and 2: greedy must keep them
       apart (clusters {0,1} and {2,3} have 2 tasks each = B/2), but
       the matching phase may then pair those clusters *)
    Alcotest.(check int) "ipc equals recomputed" r.Mwm.ipc
      (Mapping.total_ipc g r.Mwm.cluster_of);
    (* IPC must match the exhaustive optimum for this instance *)
    let best, _ = Brute.best_partition ~n:12 ~parts:3 ~cap:4 (Ugraph.edges g) in
    Alcotest.(check int) "optimal on the Fig 5 instance" best r.Mwm.ipc

let test_mwm_optimal_small () =
  (* paper claim: optimal symmetric contraction when |V| <= 2P *)
  let rng = Rng.create 31 in
  for _ = 0 to 60 do
    let procs = 2 + Rng.int rng 3 in
    let n = procs + 1 + Rng.int rng procs in
    (* n in (procs, 2*procs] *)
    let g = Ugraph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.int rng 3 > 0 then Ugraph.add_edge ~w:(1 + Rng.int rng 9) g u v
      done
    done;
    match Mwm.contract ~b:2 g ~procs with
    | Error m -> Alcotest.failf "contract failed: %s" m
    | Ok r ->
      let best, _ = Brute.best_partition ~n ~parts:procs ~cap:2 (Ugraph.edges g) in
      if r.Mwm.ipc <> best then
        Alcotest.failf "n=%d p=%d: mwm ipc %d <> optimal %d" n procs r.Mwm.ipc best
  done

let test_mwm_identity_when_enough_procs () =
  let g = Ugraph.of_edges 4 [ (0, 1, 5); (2, 3, 5) ] in
  match Mwm.contract g ~procs:8 with
  | Error m -> Alcotest.failf "contract: %s" m
  | Ok r ->
    Alcotest.(check int) "no merging needed" 4 (Array.length r.Mwm.clusters);
    Alcotest.(check int) "ipc untouched" 10 r.Mwm.ipc

let test_mwm_respects_capacity () =
  let rng = Rng.create 77 in
  for _ = 0 to 40 do
    let n = 6 + Rng.int rng 20 in
    let procs = 2 + Rng.int rng 4 in
    let b = max 2 ((n + procs - 1) / procs) in
    let b = b + (b mod 2) in
    let g = Ugraph.create n in
    for _ = 0 to 3 * n do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then Ugraph.add_edge ~w:(1 + Rng.int rng 20) g u v
    done;
    match Mwm.contract ~b g ~procs with
    | Error m -> Alcotest.failf "n=%d p=%d b=%d: %s" n procs b m
    | Ok r ->
      Alcotest.(check bool) "cluster count" true (Array.length r.Mwm.clusters <= procs);
      Array.iter
        (fun members ->
          if List.length members > b then
            Alcotest.failf "capacity %d violated: %d tasks" b (List.length members))
        r.Mwm.clusters;
      (* partition is exact *)
      let all = Array.to_list r.Mwm.clusters |> List.concat |> List.sort compare in
      Alcotest.(check (list int)) "partition" (List.init n (fun i -> i)) all
  done

let test_mwm_infeasible () =
  let g = Ugraph.complete 10 in
  match Mwm.contract ~b:2 g ~procs:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infeasible instance accepted"

(* ------------------------------------------------------------------ *)
(* Group-theoretic contraction                                         *)

let voting_tg () = Workloads.task_graph_exn (Workloads.voting ~k:3)

let test_group_contract_fig4 () =
  let tg = voting_tg () in
  match Group_contract.contract tg ~procs:4 with
  | Error m -> Alcotest.failf "group contract: %s" m
  | Ok r ->
    Alcotest.(check int) "four clusters" 4 (Array.length r.Group_contract.clusters);
    Alcotest.(check (list (list int))) "the paper's Fig 4c clusters"
      [ [ 0; 4 ]; [ 1; 5 ]; [ 2; 6 ]; [ 3; 7 ] ]
      (Array.to_list r.Group_contract.clusters |> List.sort compare);
    Alcotest.(check bool) "subgroup is normal" true r.Group_contract.normal;
    (* 2 messages internalized per cluster (from comm3) *)
    Alcotest.(check int) "internalized messages" 2 r.Group_contract.internalized

let test_group_contract_balance () =
  let tg = voting_tg () in
  List.iter
    (fun procs ->
      match Group_contract.contract tg ~procs with
      | Error m -> Alcotest.failf "procs=%d: %s" procs m
      | Ok r ->
        let sizes =
          Array.to_list r.Group_contract.clusters |> List.map List.length
          |> List.sort_uniq compare
        in
        Alcotest.(check (list int))
          (Printf.sprintf "uniform clusters for %d procs" procs)
          [ 8 / procs ] sizes)
    [ 2; 4; 8 ]

let test_group_contract_rejects () =
  (* 15-body: 15 tasks do not divide over 4 processors *)
  let tg = Workloads.task_graph_exn (Workloads.nbody ~n:15 ~s:1) in
  (match Group_contract.contract tg ~procs:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected indivisible rejection");
  (* non-bijective phases *)
  let tg2 = Workloads.task_graph_exn (Workloads.jacobi ~n:4 ~iters:1) in
  match Group_contract.contract tg2 ~procs:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected bijection rejection"

let test_balanced_contraction_exists () =
  Alcotest.(check bool) "8/4 = 2 prime" true
    (Group_contract.balanced_contraction_exists ~n:8 ~procs:4);
  Alcotest.(check bool) "24/2 = 12 not prime power" false
    (Group_contract.balanced_contraction_exists ~n:24 ~procs:2);
  Alcotest.(check bool) "9/3 = 3 prime" true
    (Group_contract.balanced_contraction_exists ~n:9 ~procs:3);
  Alcotest.(check bool) "not dividing" false
    (Group_contract.balanced_contraction_exists ~n:10 ~procs:4)

(* ------------------------------------------------------------------ *)
(* canned mappings                                                     *)

let edge_dilations topo cluster_of proc_of_cluster edges =
  let hops = Oregami_graph.Shortest.all_pairs_hops (Topology.graph topo) in
  List.filter_map
    (fun (u, v, _) ->
      let pu = proc_of_cluster.(cluster_of.(u)) and pv = proc_of_cluster.(cluster_of.(v)) in
      if pu = pv then None else Some hops.(pu).(pv))
    edges

let test_canned_ring_to_hypercube () =
  let topo = Topology.make (Topology.Hypercube 3) in
  match Canned.lookup ~family:"ring" ~n:16 topo with
  | None -> Alcotest.fail "expected canned entry"
  | Some c ->
    (* consecutive blocks of 2, Gray-coded: every ring edge has
       dilation <= 1 *)
    let edges = List.init 16 (fun i -> (i, (i + 1) mod 16, 1)) in
    let ds = edge_dilations topo c.Canned.cluster_of c.Canned.proc_of_cluster edges in
    List.iter (fun d -> Alcotest.(check int) "dilation 1" 1 d) ds

let test_canned_hypercube_subcubes () =
  let topo = Topology.make (Topology.Hypercube 3) in
  match Canned.lookup ~family:"hypercube" ~n:32 topo with
  | None -> Alcotest.fail "expected canned entry"
  | Some c ->
    let edges =
      List.concat_map
        (fun u -> List.init 5 (fun b -> (u, u lxor (1 lsl b), 1)))
        (List.init 32 (fun i -> i))
      |> List.filter (fun (u, v, _) -> u < v)
    in
    let ds = edge_dilations topo c.Canned.cluster_of c.Canned.proc_of_cluster edges in
    List.iter (fun d -> Alcotest.(check bool) "dilation <= 1" true (d <= 1)) ds

let test_canned_binomial_to_hypercube () =
  let topo = Topology.make (Topology.Hypercube 4) in
  match Canned.lookup ~family:"binomial" ~n:16 topo with
  | None -> Alcotest.fail "expected canned entry"
  | Some c ->
    let edges = List.init 15 (fun i -> (i + 1, (i + 1) land i, 1)) in
    let ds = edge_dilations topo c.Canned.cluster_of c.Canned.proc_of_cluster edges in
    List.iter (fun d -> Alcotest.(check int) "dilation exactly 1" 1 d) ds

let test_canned_bintree_to_hypercube () =
  let topo = Topology.make (Topology.Hypercube 4) in
  match Canned.lookup ~family:"bintree" ~n:15 topo with
  | None -> Alcotest.fail "expected canned entry"
  | Some c ->
    let edges =
      List.init 15 (fun v -> v)
      |> List.concat_map (fun v ->
             List.filter (fun (_, c, _) -> c < 15) [ (v, (2 * v) + 1, 1); (v, (2 * v) + 2, 1) ])
    in
    let ds = edge_dilations topo c.Canned.cluster_of c.Canned.proc_of_cluster edges in
    Alcotest.(check bool) "dilation <= 2 (inorder embedding)" true
      (List.for_all (fun d -> d <= 2) ds)

let test_canned_mesh_to_mesh () =
  let topo = Topology.make (Topology.Mesh (2, 4)) in
  match Canned.lookup ~dims:[ 4; 8 ] ~family:"mesh" ~n:32 topo with
  | None -> Alcotest.fail "expected canned tiling"
  | Some c ->
    (* 2x2 tiles; all mesh edges dilation <= 1 *)
    let edges = ref [] in
    for i = 0 to 3 do
      for j = 0 to 7 do
        if j < 7 then edges := ((i * 8) + j, (i * 8) + j + 1, 1) :: !edges;
        if i < 3 then edges := ((i * 8) + j, ((i + 1) * 8) + j, 1) :: !edges
      done
    done;
    let ds = edge_dilations topo c.Canned.cluster_of c.Canned.proc_of_cluster !edges in
    List.iter (fun d -> Alcotest.(check int) "dilation 1" 1 d) ds;
    (* perfectly balanced tiles *)
    let counts = Array.make 8 0 in
    Array.iter (fun cl -> counts.(cl) <- counts.(cl) + 1) c.Canned.cluster_of;
    Array.iter (fun k -> Alcotest.(check int) "4 tasks per tile" 4 k) counts

let test_canned_mesh_to_hypercube () =
  let topo = Topology.make (Topology.Hypercube 4) in
  match Canned.lookup ~dims:[ 4; 4 ] ~family:"mesh" ~n:16 topo with
  | None -> Alcotest.fail "expected canned entry"
  | Some c ->
    let edges = ref [] in
    for i = 0 to 3 do
      for j = 0 to 3 do
        if j < 3 then edges := ((i * 4) + j, (i * 4) + j + 1, 1) :: !edges;
        if i < 3 then edges := ((i * 4) + j, ((i + 1) * 4) + j, 1) :: !edges
      done
    done;
    let ds = edge_dilations topo c.Canned.cluster_of c.Canned.proc_of_cluster !edges in
    List.iter (fun d -> Alcotest.(check int) "dilation 1 via Gray" 1 d) ds

let test_canned_declines () =
  let ccc = Topology.make (Topology.Cube_connected_cycles 3) in
  Alcotest.(check bool) "no entry for star task graph on ccc" true
    (Canned.lookup ~family:"hypercube" ~n:16 ccc = None);
  Alcotest.(check bool) "unknown family" true
    (Canned.lookup ~family:"nosuch" ~n:8 (Topology.make (Topology.Ring 4)) = None)

(* ------------------------------------------------------------------ *)
(* binomial mesh construction                                          *)

let test_binomial_mesh_valid () =
  List.iter
    (fun k ->
      let l = Binomial_mesh.embed k in
      Alcotest.(check bool) (Printf.sprintf "k=%d valid" k) true (Binomial_mesh.check l))
    [ 0; 1; 2; 3; 5; 8; 10 ]

let test_binomial_mesh_dilation_bound () =
  (* the paper's <= 1.2 claim, checked at the sizes we can afford *)
  List.iter
    (fun k ->
      let avg = Binomial_mesh.average_dilation k in
      if avg > 1.2 then Alcotest.failf "k=%d: average dilation %.4f > 1.2" k avg)
    [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]

let test_binomial_mesh_small_perfect () =
  (* B_4 embeds in the 4x4 mesh with every edge at dilation 1 *)
  let l = Binomial_mesh.embed 4 in
  Alcotest.(check int) "total dilation = edges" 15 l.Binomial_mesh.total_dilation

(* ------------------------------------------------------------------ *)
(* NN-Embed                                                            *)

let test_nn_embed_injective () =
  let rng = Rng.create 5 in
  List.iter
    (fun kind ->
      let topo = Topology.make kind in
      let k = Topology.node_count topo in
      let cg = Ugraph.create k in
      for _ = 0 to 2 * k do
        let u = Rng.int rng k and v = Rng.int rng k in
        if u <> v then Ugraph.add_edge ~w:(1 + Rng.int rng 9) cg u v
      done;
      let em = Nn_embed.embed cg topo in
      let used = Array.make k false in
      Array.iter
        (fun p ->
          Alcotest.(check bool) "in range" true (p >= 0 && p < k);
          if used.(p) then Alcotest.fail "embedding not injective";
          used.(p) <- true)
        em)
    [ Topology.Hypercube 3; Topology.Mesh (3, 3); Topology.Ring 7 ]

let test_nn_embed_heaviest_adjacent () =
  let topo = Topology.make (Topology.Mesh (3, 3)) in
  let cg = Ugraph.of_edges 4 [ (0, 1, 100); (2, 3, 1) ] in
  let em = Nn_embed.embed cg topo in
  let hops = Oregami_graph.Shortest.all_pairs_hops (Topology.graph topo) in
  Alcotest.(check int) "heaviest pair adjacent" 1 hops.(em.(0)).(em.(1))

let test_nn_embed_beats_bad_order () =
  (* a ring cluster graph on a ring topology: NN-Embed should do at
     least as well as a random placement *)
  let k = 8 in
  let cg = Ugraph.create k in
  for i = 0 to k - 1 do
    Ugraph.add_edge ~w:10 cg i ((i + 1) mod k)
  done;
  let topo = Topology.make (Topology.Ring k) in
  let em = Nn_embed.embed cg topo in
  let cost = Nn_embed.weighted_hops cg topo em in
  let rng = Rng.create 1 in
  let rand = Array.init k (fun i -> i) in
  Rng.shuffle rng rand;
  let rand_cost = Nn_embed.weighted_hops cg topo rand in
  Alcotest.(check bool) "at least as good as random" true (cost <= rand_cost)

(* ------------------------------------------------------------------ *)
(* MM-Route (Fig 6)                                                    *)

let nbody15_mapping () =
  let tg = Workloads.task_graph_exn (Workloads.nbody ~n:15 ~s:1) in
  let topo = Topology.make (Topology.Hypercube 3) in
  (* the paper's Fig 6 embedding: tasks 0..14 in blocks of 2 on Gray-
     coded processors (task 2i and 2i+1 on the i-th Gray processor) *)
  let cluster_of = Array.init 15 (fun t -> t / 2) in
  let proc_of_cluster = Array.init 8 (fun c -> Gray.rank_in_cube 3 c) in
  (tg, topo, cluster_of, proc_of_cluster)

let test_mm_route_valid () =
  let tg, topo, cluster_of, proc_of_cluster = nbody15_mapping () in
  let proc_of_task = Array.init 15 (fun t -> proc_of_cluster.(cluster_of.(t))) in
  let routings, stats = Route.mm_route tg topo ~proc_of_task in
  let m = { Mapping.tg; topo; cluster_of; proc_of_cluster; routings; strategy = "test" } in
  (match Mapping.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid mapping: %s" e);
  Alcotest.(check int) "stats cover both phases" 2 (List.length stats.Route.phases)

let phase_max_contention topo routings phase =
  let counts = Array.make (Topology.link_count topo) 0 in
  let pr = List.find (fun pr -> pr.Mapping.pr_phase = phase) routings in
  List.iter
    (fun re ->
      List.iter (fun l -> counts.(l) <- counts.(l) + 1) re.Mapping.re_route.Routes.links)
    pr.Mapping.pr_edges;
  Array.fold_left max 0 counts

let test_mm_route_spreads_chordal () =
  let tg, topo, cluster_of, proc_of_cluster = nbody15_mapping () in
  let proc_of_task = Array.init 15 (fun t -> proc_of_cluster.(cluster_of.(t))) in
  let mm, _ = Route.mm_route tg topo ~proc_of_task in
  let ob = Route.deterministic_route tg topo ~proc_of_task in
  let mm_c = phase_max_contention topo mm "chordal" in
  let ob_c = phase_max_contention topo ob "chordal" in
  Alcotest.(check bool) "MM-Route no worse than e-cube" true (mm_c <= ob_c);
  (* 15 messages x ~2 hops over 12 links: the volume bound alone forces
     max contention >= 3; MM-Route must stay close to it *)
  Alcotest.(check bool) "low contention" true (mm_c <= 4)

let test_mm_route_colocated_empty () =
  let tg = Workloads.task_graph_exn (Workloads.voting ~k:2) in
  let topo = Topology.make (Topology.Hypercube 1) in
  let proc_of_task = [| 0; 0; 1; 1 |] in
  let routings, _ = Route.mm_route tg topo ~proc_of_task in
  List.iter
    (fun pr ->
      List.iter
        (fun re ->
          let same = proc_of_task.(re.Mapping.re_src) = proc_of_task.(re.Mapping.re_dst) in
          Alcotest.(check bool) "local iff empty" same (re.Mapping.re_route.Routes.links = []))
        pr.Mapping.pr_edges)
    routings

let test_mm_route_all_topologies () =
  let tg = Workloads.task_graph_exn (Workloads.fft ~d:3) in
  List.iter
    (fun kind ->
      let topo = Topology.make kind in
      let procs = Topology.node_count topo in
      let proc_of_task = Array.init 8 (fun t -> t mod procs) in
      let routings, _ = Route.mm_route tg topo ~proc_of_task in
      List.iter
        (fun pr ->
          List.iter
            (fun re ->
              let pu = proc_of_task.(re.Mapping.re_src)
              and pv = proc_of_task.(re.Mapping.re_dst) in
              if pu <> pv then begin
                Alcotest.(check int) "route starts at sender" pu
                  (List.hd re.Mapping.re_route.Routes.nodes);
                Alcotest.(check int) "route ends at receiver" pv
                  (List.nth re.Mapping.re_route.Routes.nodes
                     (List.length re.Mapping.re_route.Routes.nodes - 1))
              end)
            pr.Mapping.pr_edges)
        routings)
    [ Topology.Ring 5; Topology.Mesh (2, 3); Topology.Butterfly 2;
      Topology.Cube_connected_cycles 3; Topology.Binary_tree 2 ]

(* ------------------------------------------------------------------ *)
(* Stone baseline                                                      *)

let test_stone_optimal_two_proc () =
  let rng = Rng.create 9 in
  for _ = 0 to 40 do
    let n = 2 + Rng.int rng 7 in
    let comm = Ugraph.create n in
    for _ = 0 to 2 * n do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then Ugraph.add_edge ~w:(1 + Rng.int rng 9) comm u v
    done;
    let cost_a = Array.init n (fun _ -> Rng.int rng 10) in
    let cost_b = Array.init n (fun _ -> Rng.int rng 10) in
    let _, total = Stone.two_processor ~cost_a ~cost_b ~comm in
    (* brute force over all assignments *)
    let best = ref max_int in
    for mask = 0 to (1 lsl n) - 1 do
      let cost = ref 0 in
      for t = 0 to n - 1 do
        cost := !cost + if mask land (1 lsl t) <> 0 then cost_b.(t) else cost_a.(t)
      done;
      List.iter
        (fun (u, v, w) ->
          let su = mask land (1 lsl u) <> 0 and sv = mask land (1 lsl v) <> 0 in
          if su <> sv then cost := !cost + w)
        (Ugraph.edges comm);
      best := min !best !cost
    done;
    Alcotest.(check int) "min cut equals brute force" !best total
  done

let test_stone_assignment_consistent () =
  let comm = Ugraph.of_edges 4 [ (0, 1, 10); (2, 3, 10); (1, 2, 1) ] in
  let cost_a = [| 0; 0; 100; 100 |] and cost_b = [| 100; 100; 0; 0 |] in
  let side, total = Stone.two_processor ~cost_a ~cost_b ~comm in
  Alcotest.(check (list int)) "natural split" [ 0; 0; 1; 1 ] (Array.to_list side);
  Alcotest.(check int) "only the light edge cut" 1 total

let test_stone_bisection () =
  let comm = Ugraph.create 8 in
  for i = 0 to 7 do
    Ugraph.add_edge ~w:5 comm i ((i + 1) mod 8)
  done;
  let cost = Array.make 8 1 in
  let a = Stone.recursive_bisection ~procs:4 ~cost ~comm () in
  Alcotest.(check int) "uses 8 tasks" 8 (Array.length a);
  Array.iter (fun p -> Alcotest.(check bool) "proc in range" true (p >= 0 && p < 4)) a

(* ------------------------------------------------------------------ *)
(* baselines                                                            *)

let test_baselines_balanced () =
  let check name (cluster_of, proc_of_cluster) n procs =
    let k = Array.length proc_of_cluster in
    Alcotest.(check bool) (name ^ " cluster count") true (k <= procs);
    let counts = Array.make k 0 in
    Array.iter (fun c -> counts.(c) <- counts.(c) + 1) cluster_of;
    let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
    Alcotest.(check bool) (name ^ " balanced") true (mx - mn <= 1);
    Alcotest.(check int) (name ^ " covers tasks") n (Array.length cluster_of)
  in
  check "block" (Baselines.block ~n:13 ~procs:4) 13 4;
  check "round_robin" (Baselines.round_robin ~n:13 ~procs:4) 13 4;
  check "random" (Baselines.random (Rng.create 3) ~n:13 ~procs:4) 13 4

let () =
  Alcotest.run "mapper"
    [
      ( "mwm_contract",
        [
          Alcotest.test_case "Fig 5 walkthrough" `Quick test_mwm_fig5;
          Alcotest.test_case "optimal when |V| <= 2P" `Quick test_mwm_optimal_small;
          Alcotest.test_case "identity when procs >= tasks" `Quick
            test_mwm_identity_when_enough_procs;
          Alcotest.test_case "capacity respected" `Quick test_mwm_respects_capacity;
          Alcotest.test_case "infeasible rejected" `Quick test_mwm_infeasible;
        ] );
      ( "group_contract",
        [
          Alcotest.test_case "Fig 4 contraction" `Quick test_group_contract_fig4;
          Alcotest.test_case "balanced at several sizes" `Quick test_group_contract_balance;
          Alcotest.test_case "rejections" `Quick test_group_contract_rejects;
          Alcotest.test_case "Sylow condition" `Quick test_balanced_contraction_exists;
        ] );
      ( "canned",
        [
          Alcotest.test_case "ring -> hypercube (Gray)" `Quick test_canned_ring_to_hypercube;
          Alcotest.test_case "hypercube -> hypercube subcubes" `Quick
            test_canned_hypercube_subcubes;
          Alcotest.test_case "binomial -> hypercube" `Quick test_canned_binomial_to_hypercube;
          Alcotest.test_case "binary tree -> hypercube" `Quick test_canned_bintree_to_hypercube;
          Alcotest.test_case "mesh -> mesh tiling" `Quick test_canned_mesh_to_mesh;
          Alcotest.test_case "mesh -> hypercube" `Quick test_canned_mesh_to_hypercube;
          Alcotest.test_case "declines cleanly" `Quick test_canned_declines;
        ] );
      ( "binomial_mesh",
        [
          Alcotest.test_case "layouts valid" `Quick test_binomial_mesh_valid;
          Alcotest.test_case "average dilation <= 1.2" `Quick test_binomial_mesh_dilation_bound;
          Alcotest.test_case "B4 all dilation 1" `Quick test_binomial_mesh_small_perfect;
        ] );
      ( "nn_embed",
        [
          Alcotest.test_case "injective" `Quick test_nn_embed_injective;
          Alcotest.test_case "heaviest pair adjacent" `Quick test_nn_embed_heaviest_adjacent;
          Alcotest.test_case "better than random" `Quick test_nn_embed_beats_bad_order;
        ] );
      ( "mm_route",
        [
          Alcotest.test_case "valid routing (15-body on Q3)" `Quick test_mm_route_valid;
          Alcotest.test_case "spreads the chordal phase (Fig 6)" `Quick
            test_mm_route_spreads_chordal;
          Alcotest.test_case "co-located edges are local" `Quick test_mm_route_colocated_empty;
          Alcotest.test_case "valid on irregular topologies" `Quick test_mm_route_all_topologies;
        ] );
      ( "stone",
        [
          Alcotest.test_case "min-cut optimal" `Quick test_stone_optimal_two_proc;
          Alcotest.test_case "natural split" `Quick test_stone_assignment_consistent;
          Alcotest.test_case "recursive bisection" `Quick test_stone_bisection;
        ] );
      ("baselines", [ Alcotest.test_case "balanced" `Quick test_baselines_balanced ]);
    ]
