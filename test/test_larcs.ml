(* LaRCS language tests: lexer, parser, evaluator, compiler, and the
   regularity analyses on the paper's own examples. *)

module Larcs = Oregami_larcs
module Taskgraph = Oregami_taskgraph.Taskgraph
module Phase_expr = Oregami_taskgraph.Phase_expr
module Digraph = Oregami_graph.Digraph
module Perm = Oregami_perm.Perm
module Group = Oregami_perm.Group

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let nbody_source =
  {|
-- the paper's running example (Fig 2b)
algorithm nbody(n, s);

nodetype body : 0 .. n-1 nodesymmetric;

comphase ring    { body i -> body ((i+1) mod n); }
comphase chordal { body i -> body ((i + (n+1)/2) mod n); }

exphase compute1 cost 10;
exphase compute2 cost 20;

phases ((ring; compute1)^((n+1)/2); chordal; compute2)^s;
|}

let compile_nbody n s =
  match Larcs.Compile.compile_source ~bindings:[ ("n", n); ("s", s) ] nbody_source with
  | Ok c -> c
  | Error m -> Alcotest.failf "nbody compile failed: %s" m

let test_lexer () =
  match Larcs.Lexer.tokenize "algorithm foo(n); -- comment\nphases a^2;" with
  | Error m -> Alcotest.failf "lexer: %s" m
  | Ok lexemes ->
    let kinds = List.map (fun l -> l.Larcs.Lexer.tok) lexemes in
    Alcotest.(check bool) "starts with algorithm" true
      (List.hd kinds = Larcs.Lexer.KW "algorithm");
    Alcotest.(check bool) "ends with EOF" true
      (List.nth kinds (List.length kinds - 1) = Larcs.Lexer.EOF)

let test_lexer_error () =
  match Larcs.Lexer.tokenize "algorithm $bad" with
  | Error m -> Alcotest.(check bool) "mentions position" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected lexer error"

let test_parse_expr () =
  let eval s env =
    match Larcs.Parser.parse_expr s with
    | Ok e -> Larcs.Eval.expr_exn env e
    | Error m -> Alcotest.failf "parse_expr %S: %s" s m
  in
  Alcotest.(check int) "precedence" 7 (eval "1 + 2 * 3" []);
  Alcotest.(check int) "parens" 9 (eval "(1 + 2) * 3" []);
  Alcotest.(check int) "mod euclidean" 4 (eval "(0 - 1) mod 5" []);
  Alcotest.(check int) "div" 8 (eval "(n+1)/2" [ ("n", 15) ]);
  Alcotest.(check int) "xor" 6 (eval "5 xor 3" []);
  Alcotest.(check int) "pow" 32 (eval "pow(2, 5)" []);
  Alcotest.(check int) "log2" 4 (eval "log2(31)" []);
  Alcotest.(check int) "min max" 3 (eval "min(max(1,3), 7)" []);
  Alcotest.(check int) "unary minus" (-6) (eval "-2*3" [])

let test_parse_nbody () =
  match Larcs.Parser.parse nbody_source with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok p ->
    Alcotest.(check string) "name" "nbody" p.Larcs.Ast.prog_name;
    Alcotest.(check (list string)) "params" [ "n"; "s" ] p.Larcs.Ast.params;
    Alcotest.(check int) "nodetypes" 1 (List.length p.Larcs.Ast.nodetypes);
    Alcotest.(check int) "comphases" 2 (List.length p.Larcs.Ast.comphases);
    Alcotest.(check int) "exphases" 2 (List.length p.Larcs.Ast.exphases);
    let nt = List.hd p.Larcs.Ast.nodetypes in
    Alcotest.(check bool) "nodesymmetric" true nt.Larcs.Ast.nt_symmetric

let test_parse_errors () =
  let expect_error src =
    match Larcs.Parser.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_error "algorithm;";
  expect_error "algorithm a(n) nodetype t : 0..n;";
  expect_error "algorithm a(n); nodetype t : 0..n-1; phases;";
  expect_error "algorithm a(n); phases x^;";
  expect_error "algorithm a(n); comphase c { t i -> t i+ ; } phases c;"

let test_compile_nbody () =
  let c = compile_nbody 8 3 in
  let tg = c.Larcs.Compile.graph in
  Alcotest.(check int) "8 tasks" 8 tg.Taskgraph.n;
  let ring = Option.get (Taskgraph.comm_phase tg "ring") in
  Alcotest.(check int) "ring has 8 edges" 8 (Digraph.edge_count ring.Taskgraph.edges);
  Alcotest.(check bool) "ring 0->1" true (Digraph.mem_edge ring.Taskgraph.edges 0 1);
  Alcotest.(check bool) "ring 7->0" true (Digraph.mem_edge ring.Taskgraph.edges 7 0);
  let chordal = Option.get (Taskgraph.comm_phase tg "chordal") in
  (* (n+1)/2 = 4 for n = 8 *)
  Alcotest.(check bool) "chordal 0->4" true (Digraph.mem_edge chordal.Taskgraph.edges 0 4);
  Alcotest.(check bool) "declared symmetric" true tg.Taskgraph.declared_symmetric;
  (* phase expression: ((ring; compute1)^4; chordal; compute2)^3 *)
  Alcotest.(check int) "ring occurrences" 12 (Phase_expr.count_comm tg.Taskgraph.expr "ring");
  Alcotest.(check int) "chordal occurrences" 3
    (Phase_expr.count_comm tg.Taskgraph.expr "chordal");
  Alcotest.(check int) "trace length" ((4 * 2 + 2) * 3)
    (List.length (Phase_expr.trace tg.Taskgraph.expr))

let test_compile_missing_binding () =
  match Larcs.Compile.compile_source ~bindings:[ ("n", 8) ] nbody_source with
  | Error m ->
    Alcotest.(check bool) "mentions s" true (contains m "s")
  | Ok _ -> Alcotest.fail "expected missing-binding error"

let test_compile_out_of_range () =
  let src =
    {|
algorithm bad(n);
nodetype t : 0 .. n-1;
comphase c { t i -> t (i+1); }
phases c;
|}
  in
  match Larcs.Compile.compile_source ~bindings:[ ("n", 4) ] src with
  | Error m -> Alcotest.(check bool) "suggests guard" true (String.length m > 10)
  | Ok _ -> Alcotest.fail "expected out-of-range error"

let test_compile_guarded () =
  let src =
    {|
algorithm line(n);
nodetype t : 0 .. n-1;
comphase right { t i -> t (i+1) when i < n-1; }
exphase work cost 1;
phases (right; work)^2;
|}
  in
  match Larcs.Compile.compile_source ~bindings:[ ("n", 5) ] src with
  | Error m -> Alcotest.failf "guarded compile failed: %s" m
  | Ok c ->
    let tg = c.Larcs.Compile.graph in
    let right = Option.get (Taskgraph.comm_phase tg "right") in
    Alcotest.(check int) "4 edges" 4 (Digraph.edge_count right.Taskgraph.edges)

let test_compile_2d () =
  let src =
    {|
algorithm jacobi(n);
nodetype cell : (0 .. n-1, 0 .. n-1);
comphase east  { cell (i, j) -> cell (i, j+1) when j < n-1; }
comphase south { cell (i, j) -> cell (i+1, j) when i < n-1; }
exphase relax : cell (i, j) cost 5;
phases (east; south; relax)^10;
|}
  in
  match Larcs.Compile.compile_source ~bindings:[ ("n", 4) ] src with
  | Error m -> Alcotest.failf "2d compile failed: %s" m
  | Ok c ->
    let tg = c.Larcs.Compile.graph in
    Alcotest.(check int) "16 tasks" 16 tg.Taskgraph.n;
    let east = Option.get (Taskgraph.comm_phase tg "east") in
    Alcotest.(check int) "12 east edges" 12 (Digraph.edge_count east.Taskgraph.edges);
    Alcotest.(check (option int)) "node id (1,2)" (Some 6)
      (Larcs.Compile.node_id c "cell" [ 1; 2 ]);
    Alcotest.(check (list int)) "label of 6" [ 1; 2 ] (Larcs.Compile.node_label_values c 6)

let test_volume_and_multi_type () =
  let src =
    {|
algorithm masterworker(w);
nodetype master : 0 .. 0;
nodetype worker : 0 .. w-1;
comphase distribute { master m -> worker 0 volume 100; }
comphase report { worker i -> master 0 volume i + 1; }
exphase work : worker i cost 10 * (i + 1);
phases distribute; work; report;
|}
  in
  match Larcs.Compile.compile_source ~bindings:[ ("w", 3) ] src with
  | Error m -> Alcotest.failf "multi-type compile failed: %s" m
  | Ok c ->
    let tg = c.Larcs.Compile.graph in
    Alcotest.(check int) "tasks" 4 tg.Taskgraph.n;
    Alcotest.(check int) "report volume" 6 (Taskgraph.phase_volume tg "report");
    let work = Option.get (Taskgraph.exec_phase tg "work") in
    Alcotest.(check int) "master cost 0" 0 work.Taskgraph.costs.(0);
    Alcotest.(check int) "worker 2 cost" 30 work.Taskgraph.costs.(3)

let test_analyze_nbody () =
  let c = compile_nbody 8 1 in
  let a = Larcs.Analyze.analyze c in
  Alcotest.(check bool) "all bijective" true a.Larcs.Analyze.all_bijective;
  (match a.Larcs.Analyze.cayley with
  | Some cy ->
    Alcotest.(check int) "group order 8" 8 (Group.order cy.Larcs.Analyze.group);
    Alcotest.(check bool) "is cayley" true cy.Larcs.Analyze.is_cayley
  | None -> Alcotest.fail "expected cayley analysis");
  (* the ring/chordal functions wrap with mod, so they are not affine
     on the label box — the systolic path must NOT trigger *)
  Alcotest.(check bool) "not affine" true (Option.is_none a.Larcs.Analyze.affine_maps)

let test_analyze_affine () =
  let src =
    {|
algorithm stencil(n);
nodetype cell : (0 .. n-1, 0 .. n-1);
comphase flow { cell (i, j) -> cell (i+1, j+2) when (i < n-1) and (j < n-2); }
phases flow;
|}
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 6) ] src) in
  let a = Larcs.Analyze.analyze c in
  match a.Larcs.Analyze.affine_maps with
  | None -> Alcotest.fail "expected affine maps"
  | Some [ ("flow", [ m ]) ] ->
    Alcotest.(check bool) "identity matrix" true
      (m.Larcs.Analyze.matrix = [| [| 1; 0 |]; [| 0; 1 |] |]);
    Alcotest.(check bool) "offset (1,2)" true (m.Larcs.Analyze.offset = [| 1; 2 |])
  | Some _ -> Alcotest.fail "unexpected affine map shape"

let test_analyze_families () =
  let ring_src =
    {|
algorithm r(n);
nodetype t : 0 .. n-1;
comphase step { t i -> t ((i+1) mod n); }
phases step;
|}
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 10) ] ring_src) in
  Alcotest.(check (option string)) "ring detected" (Some "ring")
    (Larcs.Analyze.detect_family c.Larcs.Compile.graph);
  let line_src =
    {|
algorithm l(n);
nodetype t : 0 .. n-1;
comphase step { t i -> t (i+1) when i < n-1; }
phases step;
|}
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("n", 7) ] line_src) in
  Alcotest.(check (option string)) "line detected" (Some "line")
    (Larcs.Analyze.detect_family c.Larcs.Compile.graph);
  let hyper_src =
    {|
algorithm h(d);
nodetype t : 0 .. pow(2,d)-1;
comphase d0 { t i -> t (i xor 1); }
comphase d1 { t i -> t (i xor 2); }
comphase d2 { t i -> t (i xor 4); }
phases d0; d1; d2;
|}
  in
  let c = Result.get_ok (Larcs.Compile.compile_source ~bindings:[ ("d", 3) ] hyper_src) in
  Alcotest.(check (option string)) "hypercube detected" (Some "hypercube")
    (Larcs.Analyze.detect_family c.Larcs.Compile.graph)

let test_pretty_roundtrip () =
  let p = Result.get_ok (Larcs.Parser.parse nbody_source) in
  let printed = Larcs.Pretty.program p in
  match Larcs.Parser.parse printed with
  | Error m -> Alcotest.failf "re-parse of pretty output failed: %s\n%s" m printed
  | Ok p2 ->
    Alcotest.(check string) "name" p.Larcs.Ast.prog_name p2.Larcs.Ast.prog_name;
    Alcotest.(check int) "comphases" (List.length p.Larcs.Ast.comphases)
      (List.length p2.Larcs.Ast.comphases);
    (* compiled graphs agree *)
    let g1 =
      (Result.get_ok (Larcs.Compile.compile ~bindings:[ ("n", 9); ("s", 2) ] p)).Larcs.Compile.graph
    in
    let g2 =
      (Result.get_ok (Larcs.Compile.compile ~bindings:[ ("n", 9); ("s", 2) ] p2)).Larcs.Compile.graph
    in
    Alcotest.(check int) "same n" g1.Taskgraph.n g2.Taskgraph.n;
    List.iter2
      (fun (a : Taskgraph.comm_phase) (b : Taskgraph.comm_phase) ->
        Alcotest.(check bool)
          (Printf.sprintf "phase %s equal" a.Taskgraph.cp_name)
          true
          (Digraph.equal a.Taskgraph.edges b.Taskgraph.edges))
      g1.Taskgraph.comm_phases g2.Taskgraph.comm_phases

let test_dump () =
  let c = compile_nbody 4 1 in
  let d = Larcs.Compile.dump c in
  Alcotest.(check bool) "mentions algorithm" true
    (contains d "(algorithm nbody")

(* ------------------------------------------------------------------ *)
(* property tests                                                      *)

let gen_expr =
  let open QCheck.Gen in
  let var = oneofl [ "i"; "j"; "n" ] in
  sized
  @@ fix (fun self size ->
         if size <= 1 then
           oneof [ map (fun v -> Larcs.Ast.Int v) (int_range 0 20);
                   map (fun v -> Larcs.Ast.Var v) var ]
         else
           oneof
             [
               map (fun v -> Larcs.Ast.Int v) (int_range 0 20);
               map (fun v -> Larcs.Ast.Var v) var;
               map (fun e -> Larcs.Ast.Neg e) (self (size / 2));
               map3
                 (fun op a b -> Larcs.Ast.Bin (op, a, b))
                 (oneofl Larcs.Ast.[ Add; Sub; Mul; Div; Mod; Xor ])
                 (self (size / 2)) (self (size / 2));
               map2
                 (fun a b -> Larcs.Ast.Call ("min", [ a; b ]))
                 (self (size / 2)) (self (size / 2));
             ])

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"pretty-printed expressions re-parse structurally" ~count:300
    (QCheck.make gen_expr) (fun e ->
      let printed = Larcs.Pretty.expr e in
      match Larcs.Parser.parse_expr printed with
      | Ok e2 -> e2 = e
      | Error _ -> false)

let gen_pexpr =
  let open QCheck.Gen in
  let phase = oneofl [ "a"; "b"; "c" ] in
  sized
  @@ fix (fun self size ->
         if size <= 1 then
           oneof [ return Larcs.Ast.PEps; map (fun p -> Larcs.Ast.PPhase p) phase ]
         else
           oneof
             [
               map (fun p -> Larcs.Ast.PPhase p) phase;
               map2 (fun a b -> Larcs.Ast.PSeq (a, b)) (self (size / 2)) (self (size / 2));
               map2 (fun a b -> Larcs.Ast.PPar (a, b)) (self (size / 2)) (self (size / 2));
               map2
                 (fun a k -> Larcs.Ast.PRep (a, Larcs.Ast.Int k))
                 (self (size / 2)) (int_range 0 4);
             ])

(* malformed-input corpus: every broken variant of a real program must
   come back as [Error] with a position, never an escaped exception *)
let compile_broken src =
  match Larcs.Compile.compile_source ~bindings:[ ("n", 8); ("s", 2) ] src with
  | Ok _ -> None
  | Error m ->
    if m = "" then Alcotest.fail "empty error message";
    Some m
  | exception e ->
    Alcotest.failf "exception escaped Compile: %s" (Printexc.to_string e)

let test_malformed_corpus () =
  (* every truncation of the running example *)
  for len = 0 to String.length nbody_source - 1 do
    ignore (compile_broken (String.sub nbody_source 0 len))
  done;
  (* garbling one character at a time with junk bytes *)
  List.iter
    (fun junk ->
      for pos = 0 to String.length nbody_source - 1 do
        let b = Bytes.of_string nbody_source in
        Bytes.set b pos junk;
        ignore (compile_broken (Bytes.to_string b))
      done)
    [ '\255'; '@'; '$'; '?' ];
  (* specific defects get positioned messages *)
  let positioned what src =
    match compile_broken src with
    | Some m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reports a position (%s)" what m)
        true (contains m "line")
    | None -> Alcotest.failf "%s: expected an Error" what
  in
  positioned "truncated mid-keyword" (String.sub nbody_source 0 60);
  positioned "junk byte" "algorithm q();\n\255";
  positioned "huge int literal"
    "algorithm q();\nnodetype t : 0 .. 99999999999999999999;\nphases t;";
  (* binary garbage *)
  ignore (compile_broken (String.init 64 (fun i -> Char.chr (i * 4 mod 256))));
  (* pathological nesting must not blow the stack *)
  let deep =
    "algorithm q(); exphase a cost 1; phases "
    ^ String.concat "" (List.init 200_000 (fun _ -> "("))
    ^ "a"
  in
  ignore (compile_broken deep);
  (* resource-exhaustion programs are semantic errors, not OOM crashes *)
  let named what needle src =
    match compile_broken src with
    | Some m ->
      Alcotest.(check bool) (Printf.sprintf "%s names the limit (%s)" what m) true
        (contains m needle)
    | None -> Alcotest.failf "%s: expected an Error" what
  in
  named "huge node space" "exceeds"
    "algorithm q();\nnodetype t : 0 .. 123456789123;\nexphase a cost 1;\nphases a;";
  named "overflowing 2d space" "exceeds"
    "algorithm q();\nnodetype t : (0 .. 4611686018427387902, 0 .. 4611686018427387902);\n\
     exphase a cost 1;\nphases a;";
  named "spawn tree too deep" "too deep"
    "algorithm q();\nspawntree t : depth 60;\nphases t_spawn;"

let qcheck_pexpr_roundtrip =
  (* sequences re-associate during parsing, so require idempotence of
     pretty . parse rather than structural equality *)
  QCheck.Test.make ~name:"pretty-printed phase expressions are parse-stable" ~count:300
    (QCheck.make gen_pexpr) (fun pe ->
      let printed = Larcs.Pretty.pexpr pe in
      let src = Printf.sprintf "algorithm q(); phases %s;" printed in
      match Larcs.Parser.parse src with
      | Error _ -> false
      | Ok p -> Larcs.Pretty.pexpr p.Larcs.Ast.phases = printed)

let () =
  Alcotest.run "larcs"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer;
          Alcotest.test_case "error position" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "expressions" `Quick test_parse_expr;
          Alcotest.test_case "nbody program" `Quick test_parse_nbody;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_pexpr_roundtrip;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "nbody" `Quick test_compile_nbody;
          Alcotest.test_case "missing binding" `Quick test_compile_missing_binding;
          Alcotest.test_case "out of range target" `Quick test_compile_out_of_range;
          Alcotest.test_case "guards" `Quick test_compile_guarded;
          Alcotest.test_case "2d node space" `Quick test_compile_2d;
          Alcotest.test_case "volumes and multiple types" `Quick test_volume_and_multi_type;
          Alcotest.test_case "s-expression dump" `Quick test_dump;
          Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "nbody cayley" `Quick test_analyze_nbody;
          Alcotest.test_case "affine stencil" `Quick test_analyze_affine;
          Alcotest.test_case "family detection" `Quick test_analyze_families;
        ] );
    ]
