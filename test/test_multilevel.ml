(* The multilevel coarsen -> map -> refine tier.

   Coarsening must conserve what the mapper optimizes: total node
   weight at every level (load balance), and total edge traffic up to
   the explicitly-accounted internalized volume (communication).
   Projection through the hierarchy must land every task on an alive
   processor (Mapping.validate), identically for identical seeds, and
   the anytime contract must hold at tiny budgets. *)

open Oregami
module Coarsen = Oregami.Coarsen
module Synth = Oregami.Synth
module Rng = Prelude.Rng

let topo s = Topology.make (Result.get_ok (Topology.parse s))

let hierarchy ?(target = 64) family n seed =
  let tg = Synth.generate family ~n ~seed in
  let node_weight = Array.make n 1 in
  let finest = Coarsen.of_ugraph ~node_weight (Taskgraph.static_graph tg) in
  Coarsen.coarsen ~rng:(Rng.create 7) ~target finest

let instances =
  [
    (Synth.Grid, 3000, 1); (Synth.Ring, 2000, 1); (Synth.Tree, 2500, 1);
    (Synth.Rmat, 2000, 3);
  ]

(* --- coarsening invariants ---------------------------------------- *)

let test_node_weight_preserved () =
  List.iter
    (fun (family, n, seed) ->
      let h = hierarchy family n seed in
      let w0 = Coarsen.total_node_weight h.Coarsen.levels.(0) in
      Alcotest.(check int) "finest weight is the task count" n w0;
      Array.iter
        (fun lv ->
          Alcotest.(check int) "level conserves node weight" w0
            (Coarsen.total_node_weight lv))
        h.Coarsen.levels)
    instances

let test_edge_traffic_accounted () =
  List.iter
    (fun (family, n, seed) ->
      let h = hierarchy family n seed in
      let levels = h.Coarsen.levels in
      Alcotest.(check int) "finest has no internalized traffic" 0
        levels.(0).Coarsen.lv_internalized;
      for i = 0 to Array.length levels - 2 do
        Alcotest.(check int)
          (Printf.sprintf "level %d traffic = coarser traffic + internalized" i)
          levels.(i).Coarsen.lv_edge_total
          (levels.(i + 1).Coarsen.lv_edge_total
          + levels.(i + 1).Coarsen.lv_internalized)
      done)
    instances

let test_levels_shrink_to_target () =
  List.iter
    (fun (family, n, seed) ->
      let h = hierarchy ~target:64 family n seed in
      let levels = h.Coarsen.levels in
      Alcotest.(check bool) "not truncated" false h.Coarsen.truncated;
      let nl = Array.length levels in
      for i = 1 to nl - 1 do
        Alcotest.(check bool) "levels strictly shrink" true
          (levels.(i).Coarsen.lv_n < levels.(i - 1).Coarsen.lv_n)
      done;
      let coarsest = levels.(nl - 1).Coarsen.lv_n in
      Alcotest.(check bool) "coarsest within the target" true
        (coarsest > 0 && coarsest <= 64))
    instances

let test_projection_composes () =
  List.iter
    (fun (family, n, seed) ->
      let h = hierarchy family n seed in
      let levels = h.Coarsen.levels in
      let nl = Array.length levels in
      let k = levels.(nl - 1).Coarsen.lv_n in
      (* project the coarsest identity through the whole hierarchy:
         every fine node must land on a coarse id, and the preimages
         must partition the fine nodes *)
      let fine = Coarsen.project h (Array.init k (fun c -> c)) in
      Alcotest.(check int) "one value per task" n (Array.length fine);
      let seen = Array.make k 0 in
      Array.iter
        (fun c ->
          Alcotest.(check bool) "coarse id in range" true (c >= 0 && c < k);
          seen.(c) <- seen.(c) + 1)
        fine;
      Array.iteri
        (fun c count ->
          Alcotest.(check bool)
            (Printf.sprintf "coarse node %d is non-empty" c)
            true (count > 0))
        seen)
    instances

(* --- the full tier through the driver ----------------------------- *)

let options = { Driver.default_options with Driver.only = [ "multilevel" ] }

let test_mapping_validates () =
  List.iter
    (fun (family, n, seed) ->
      let tg = Synth.generate family ~n ~seed in
      match Driver.map_taskgraph ~options tg (topo "torus:8x8") with
      | Error e -> Alcotest.failf "multilevel failed on %d tasks: %s" n e
      | Ok m -> begin
        Alcotest.(check string) "strategy label" "multilevel" m.Mapping.strategy;
        match Mapping.validate m with
        | Ok () -> ()
        | Error e -> Alcotest.failf "invalid mapping: %s" e
      end)
    instances

let test_declines_small_graphs () =
  let tg = Synth.generate Synth.Grid ~n:100 ~seed:1 in
  (match Driver.map_taskgraph tg (topo "torus:4x4") with
  | Error e -> Alcotest.failf "dispatch failed on a small graph: %s" e
  | Ok m ->
    Alcotest.(check bool) "multilevel does not take small graphs" true
      (m.Mapping.strategy <> "multilevel"));
  match Driver.map_taskgraph ~options tg (topo "torus:4x4") with
  | Error e -> Alcotest.failf "--only multilevel forcing failed: %s" e
  | Ok m ->
    Alcotest.(check string) "forced by --only" "multilevel" m.Mapping.strategy

(* the mirror gate: past the flat sweet spot the quadratic-ish flat
   contractions stand aside and the default dispatch lands on the
   multilevel tier, unless a flat strategy is forced by name *)
let test_flat_stands_aside_at_scale () =
  let tg = Synth.generate Synth.Grid ~n:3000 ~seed:1 in
  (match Driver.map_taskgraph tg (topo "torus:8x8") with
  | Error e -> Alcotest.failf "default dispatch failed at 3000 tasks: %s" e
  | Ok m ->
    Alcotest.(check string) "default dispatch picks multilevel" "multilevel"
      m.Mapping.strategy);
  match
    Driver.map_taskgraph
      ~options:{ Driver.default_options with Driver.only = [ "mwm" ] }
      tg (topo "torus:8x8")
  with
  | Error e -> Alcotest.failf "--only mwm forcing failed: %s" e
  | Ok m ->
    Alcotest.(check string) "forced by --only" "mwm+nn" m.Mapping.strategy

let test_deterministic () =
  let run () =
    let tg = Synth.generate Synth.Rmat ~n:3000 ~seed:5 in
    Driver.report_taskgraph ~options tg (topo "torus:8x8")
  in
  match (run (), run ()) with
  | (Ok m1, s1), (Ok m2, s2) ->
    Alcotest.(check (array int)) "same seed, same assignment"
      (Mapping.assignment m1) (Mapping.assignment m2);
    Alcotest.(check (list (pair string int))) "same counters"
      (Stats.counters s1) (Stats.counters s2)
  | (Error e, _), _ | _, (Error e, _) -> Alcotest.failf "run failed: %s" e

let test_tiny_fuel_truncates () =
  let tg = Synth.generate Synth.Grid ~n:4000 ~seed:1 in
  let options = { options with Driver.fuel = Some 500; Driver.fallback = true } in
  let ctx = Ctx.of_taskgraph ~options tg (topo "torus:8x8") in
  match Driver.run ctx with
  | Error e -> Alcotest.failf "budgeted multilevel run failed: %s" e
  | Ok (m, deg) ->
    (match Mapping.validate m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid budgeted mapping: %s" e);
    Alcotest.(check bool) "500 fuel units cannot be a full run" true
      (deg <> Stats.Full);
    Alcotest.(check bool) "budget tripped" true (Budget.exhausted ctx.Ctx.budget)

(* --- the synthetic generator specs -------------------------------- *)

let test_synth_specs () =
  Alcotest.(check bool) "synth: prefix" true (Synth.is_spec "synth:grid:10");
  Alcotest.(check bool) "not a spec" false (Synth.is_spec "nbody");
  (match Synth.parse "synth:rmat:500:9" with
  | Ok (Synth.Rmat, 500, 9) -> ()
  | Ok _ -> Alcotest.fail "parsed the wrong instance"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Synth.parse "synth:grid:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a zero-task instance");
  (match Synth.parse "synth:mobius:8" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown family");
  match Synth.build "synth:tree:777" with
  | Error e -> Alcotest.failf "build failed: %s" e
  | Ok tg -> Alcotest.(check int) "task count" 777 tg.Taskgraph.n

let () =
  Alcotest.run "multilevel"
    [
      ( "coarsen",
        [
          Alcotest.test_case "node weight preserved" `Quick
            test_node_weight_preserved;
          Alcotest.test_case "edge traffic accounted" `Quick
            test_edge_traffic_accounted;
          Alcotest.test_case "levels shrink to target" `Quick
            test_levels_shrink_to_target;
          Alcotest.test_case "projection composes" `Quick
            test_projection_composes;
        ] );
      ( "tier",
        [
          Alcotest.test_case "mapping validates" `Quick test_mapping_validates;
          Alcotest.test_case "declines small graphs" `Quick
            test_declines_small_graphs;
          Alcotest.test_case "flat stands aside at scale" `Quick
            test_flat_stands_aside_at_scale;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "tiny fuel truncates" `Quick
            test_tiny_fuel_truncates;
        ] );
      ( "synth",
        [ Alcotest.test_case "spec parsing" `Quick test_synth_specs ] );
    ]
