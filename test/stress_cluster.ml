(* Cluster lifecycle soak: 500 seeded arrival/departure events on a
   torus:8x8 with periodic chaos woven in, the lease-accounting
   invariants checked after every single event, and the final report
   audited so that every job that ever arrived is accounted for by
   name — admitted, refused, or shed; never silently lost. *)

open Oregami

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let () =
  let machine =
    match Topology.of_string "torus:8x8" with
    | Ok t -> t
    | Error e -> fail "topology: %s" e
  in
  let events = Cluster.synth_trace ~events:500 ~seed:20260809 machine in
  let arrivals =
    List.filter_map
      (function Cluster.Arrive a -> Some a.Cluster.ar_name | _ -> None)
      events
  in
  (* weave chaos through the trace: kill a processor every 60 events,
     revive it 30 later; one link blink near the middle *)
  let chaos =
    List.concat_map
      (fun i ->
        let p = 1 + ((i * 7) mod 62) in
        [
          (60 * i, Cluster.Kill { procs = [ p ]; links = [] });
          ((60 * i) + 30, Cluster.Revive { procs = [ p ]; links = [] });
        ])
      [ 1; 2; 3; 4; 5; 6; 7 ]
    @ [
        (250, Cluster.Kill { procs = []; links = [ 0; 1 ] });
        (280, Cluster.Revive { procs = []; links = [ 0; 1 ] });
      ]
  in
  let chaos = List.sort (fun (a, _) (b, _) -> compare a b) chaos in
  let t =
    match Cluster.create machine with
    | Ok t -> t
    | Error e -> fail "create: %s" e
  in
  (* drive by hand rather than through Cluster.run so the invariants
     are asserted after EVERY event, chaos included *)
  let steps = ref 0 in
  let check ev =
    Cluster.step t ev;
    incr steps;
    (match Cluster.invariants t with
    | Ok () -> ()
    | Error e ->
      fail "invariants broken after event %d (%s): %s" !steps
        (Cluster.describe_event ev) e);
    let u = Cluster.utilization t and f = Cluster.fragmentation t in
    if u < 0.0 || u > 1.0 then fail "utilization %f out of range" u;
    if f < 0.0 || f > 1.0 then fail "fragmentation %f out of range" f
  in
  let rec go i chaos events =
    let due, later = List.partition (fun (at, _) -> at <= i) chaos in
    List.iter (fun (_, ev) -> check ev) due;
    match events with
    | [] -> List.iter (fun (_, ev) -> check ev) later
    | ev :: rest ->
      check ev;
      go (i + 1) later rest
  in
  go 0 chaos events;
  let r = Cluster.finish t in
  (match Cluster.invariants t with
  | Ok () -> ()
  | Error e -> fail "invariants broken after finish: %s" e);
  (* every arrival is accounted for exactly once by name *)
  let refused = List.map fst r.Cluster.rp_refused in
  List.iter
    (fun name ->
      let admitted =
        List.mem name r.Cluster.rp_running
        || (not (List.mem name refused))
           && not (List.mem name r.Cluster.rp_shed)
      in
      let seen =
        (if admitted then 1 else 0)
        + (if List.mem name refused then 1 else 0)
        + if List.mem name r.Cluster.rp_shed then 1 else 0
      in
      if seen <> 1 then fail "job %s accounted %d times" name seen)
    arrivals;
  if r.Cluster.rp_queued <> [] then
    fail "finish left %d jobs queued" (List.length r.Cluster.rp_queued);
  let named = List.length refused + List.length r.Cluster.rp_shed in
  if r.Cluster.rp_admitted + r.Cluster.rp_cancelled + named < List.length arrivals
  then
    fail "%d arrivals, only %d admitted + %d cancelled + %d refused/shed"
      (List.length arrivals) r.Cluster.rp_admitted r.Cluster.rp_cancelled named;
  if r.Cluster.rp_events <> !steps then
    fail "report counts %d events, drove %d" r.Cluster.rp_events !steps;
  if r.Cluster.rp_chaos_applied + r.Cluster.rp_chaos_refused <> List.length chaos
  then
    fail "%d chaos events, %d applied + %d refused" (List.length chaos)
      r.Cluster.rp_chaos_applied r.Cluster.rp_chaos_refused;
  Printf.printf
    "stress_cluster: %d events ok (%d arrivals: %d admissions, %d refused, %d \
     shed; %d repairs, %d remaps, %d evictions, %d repacks; chaos %d applied, \
     %d refused)\n"
    !steps (List.length arrivals) r.Cluster.rp_admitted (List.length refused)
    (List.length r.Cluster.rp_shed) r.Cluster.rp_repairs r.Cluster.rp_remaps
    r.Cluster.rp_evictions r.Cluster.rp_repacks r.Cluster.rp_chaos_applied
    r.Cluster.rp_chaos_refused
